#include "apps/external_word_count.hpp"

#include "apps/tokenize.hpp"
#include "apps/word_count.hpp"

namespace supmr::apps {

void ExternalWordCountApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(num_map_threads, options_);
  results_.clear();
  runs_spilled_ = 0;
}

Status ExternalWordCountApp::prepare_round(const ingest::IngestChunk& chunk) {
  // Coordinator context: no mappers are running, so stripes may be drained.
  SUPMR_RETURN_IF_ERROR(container_.maybe_spill());
  splits_ = split_text(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void ExternalWordCountApp::map_task(std::size_t task, std::size_t thread_id) {
  tokenize_words(splits_[task], [&](std::string_view word) {
    container_.emit(thread_id, word, 1);
  });
}

Status ExternalWordCountApp::reduce(ThreadPool&, std::size_t) {
  runs_spilled_ = container_.runs_spilled();
  // Streaming combining merge over spilled runs + live stripes.
  return container_.merge_reduce(
      [&](std::string_view word, std::uint64_t count) {
        results_.emplace_back(std::string(word), count);
      });
}

Status ExternalWordCountApp::merge(ThreadPool&, const core::MergePlan&,
                                   merge::MergeStats* stats) {
  // merge_reduce already emitted in key order.
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::string ExternalWordCountApp::canonical_output() const {
  // Same encoding as WordCountApp — the spilling container promises
  // byte-identical output at any budget, and the conformance harness holds
  // it to that.
  std::string out;
  for (const auto& [word, count] : results_) {
    out += word;
    out += '\t';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
