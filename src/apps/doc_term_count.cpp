#include "apps/doc_term_count.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "apps/tokenize.hpp"
#include "merge/introsort.hpp"
#include "merge/pairwise.hpp"
#include "merge/pway.hpp"

namespace supmr::apps {

void DocTermCountApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(num_map_threads, /*capacity_hint=*/4096);
  results_.clear();
  partitions_.clear();
}

Status DocTermCountApp::prepare_round(const ingest::IngestChunk& chunk) {
  if (chunk.files.empty()) {
    return Status::InvalidArgument(
        "doc term count requires intra-file chunking (MultiFileSource): "
        "chunk carries no file spans");
  }
  tasks_.assign(std::min(num_mappers_, chunk.files.size()), {});
  std::size_t next = 0;
  for (const ingest::FileSpan& span : chunk.files) {
    tasks_[next].push_back(FileTask{
        chunk.bytes().subspan(span.offset_in_chunk, span.length),
        static_cast<std::uint32_t>(span.file_index)});
    next = (next + 1) % tasks_.size();
  }
  return Status::Ok();
}

void DocTermCountApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < tasks_.size());
  char key[kMaxWord + 16];
  for (const FileTask& file : tasks_[task]) {
    // Composite key prefix "<file_id>\t" shared by every word of the file.
    const int prefix = std::snprintf(key, sizeof(key), "%u\t", file.file_id);
    tokenize_words(file.text, [&](std::string_view word) {
      std::copy(word.begin(), word.end(), key + prefix);
      container_.emit(
          thread_id,
          std::string_view(key, static_cast<std::size_t>(prefix) + word.size()),
          std::uint64_t{1});
    });
  }
}

Status DocTermCountApp::reduce(ThreadPool& pool, std::size_t num_partitions) {
  partitions_.assign(num_partitions, {});
  std::vector<std::function<void(std::size_t)>> tasks;
  tasks.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    tasks.push_back([this, p, num_partitions](std::size_t) {
      partitions_[p] = container_.reduce_partition(p, num_partitions);
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  return Status::Ok();
}

Status DocTermCountApp::merge(ThreadPool& pool, const core::MergePlan& plan,
                              merge::MergeStats* stats) {
  auto by_key = [](const Result& a, const Result& b) {
    return a.first < b.first;
  };
  std::vector<std::function<void(std::size_t)>> sort_tasks;
  for (auto& part : partitions_) {
    sort_tasks.push_back([&part, &by_key](std::size_t) {
      merge::introsort(part.begin(), part.end(), by_key);
    });
  }
  if (!pool.run_wave(sort_tasks))
    return Status::Internal("merge sort wave dropped: thread pool shut down");

  std::uint64_t total = 0;
  for (const auto& part : partitions_) total += part.size();
  results_.resize(total);

  merge::MergeStats local;
  if (plan.mode != core::MergeMode::kPairwise) {
    std::vector<std::span<const Result>> runs;
    runs.reserve(partitions_.size());
    for (const auto& part : partitions_)
      runs.push_back(std::span<const Result>(part.data(), part.size()));
    const std::size_t p = plan.mode == core::MergeMode::kPartitioned
                              ? plan.partitions
                              : 0;
    local = merge::parallel_pway_merge(pool, std::move(runs),
                                       results_.data(), by_key, p);
  } else {
    std::vector<std::span<Result>> runs;
    std::size_t offset = 0;
    for (auto& part : partitions_) {
      std::copy(part.begin(), part.end(), results_.begin() + offset);
      runs.push_back(std::span<Result>(results_.data() + offset, part.size()));
      offset += part.size();
    }
    local = merge::pairwise_merge(
        pool, std::move(runs),
        std::span<Result>(results_.data(), results_.size()), by_key);
  }
  partitions_.clear();
  if (stats != nullptr) *stats = std::move(local);
  return Status::Ok();
}

std::string DocTermCountApp::canonical_output() const {
  // The key already contains "<file_id>\t<word>"; appending "\t<count>"
  // yields three-field lines the TF-IDF join tells apart from the
  // two-field inverted-index lines by tab count.
  std::string out;
  for (const auto& [key, count] : results_) {
    out += key;
    out += '\t';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
