// Grep — multi-pattern occurrence counting over text.
//
// A filter-style workload (cf. Rhea [15] in the paper's related work): map
// scans each line for every pattern and emits (pattern, occurrences); the
// intermediate set is tiny (one key per pattern), the opposite extreme from
// sort. Included as a third application point on the "job phase complexity"
// spectrum Conclusion 1 describes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/hash_container.hpp"
#include "core/application.hpp"

namespace supmr::apps {

class GrepApp final : public core::Application {
 public:
  using Result = std::pair<std::string, std::uint64_t>;

  explicit GrepApp(std::vector<std::string> patterns)
      : patterns_(std::move(patterns)) {}

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return results_.size(); }
  std::string canonical_output() const override;

  core::ShardKind shard_kind() const override {
    return core::ShardKind::kSortedKeys;
  }

  // (pattern, total occurrences), sorted by pattern; patterns with zero
  // matches are absent.
  const std::vector<Result>& results() const { return results_; }

  // Count of input lines scanned (all rounds).
  std::uint64_t lines_scanned() const;

 private:
  std::vector<std::string> patterns_;
  std::size_t num_mappers_ = 0;
  containers::HashContainer<containers::SumCombiner<std::uint64_t>>
      container_;
  std::vector<std::span<const char>> splits_;
  std::vector<std::uint64_t> lines_per_thread_;
  std::vector<std::vector<Result>> partitions_;
  std::vector<Result> results_;
};

// Counts non-overlapping occurrences of `needle` in `haystack` (memmem-style
// scan). Exposed for tests.
std::uint64_t count_occurrences(std::string_view haystack,
                                std::string_view needle);

}  // namespace supmr::apps
