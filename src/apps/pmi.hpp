// PMI join — the sink stage of the PMI chain (docs/graphs.md).
//
// Input is the concatenation of two upstream canonical outputs over the
// SAME text corpus: WordCountApp ("word\tcount\n") and PairCountApp
// ("w1 w2\tcount\n"). Every line is "key\tcount" with a globally unique key
// — a key with a space is a bigram, without is a unigram — so the join
// needs no combining, only a global sort. Merge computes, for every pair,
// the pointwise mutual information
//
//   pmi(w1, w2) = ln( (c12 / N_pairs) / ((c1 / N_words) * (c2 / N_words)) )
//
// and emits "w1 w2\t<pmi>\n" (fixed "%.6f" formatting, so the bytes are
// deterministic) in pair-key order. This is the YTsaurus-style chained
// MapReduce shape: two map-heavy jobs fan into a cheap join.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/application.hpp"

namespace supmr::apps {

class PmiApp final : public core::Application {
 public:
  struct Entry {
    std::string key;
    std::uint64_t count = 0;
  };

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return pmi_.size(); }
  std::string canonical_output() const override;

  // ("w1 w2", pmi) sorted by the pair key.
  const std::vector<std::pair<std::string, double>>& results() const {
    return pmi_;
  }
  // Lines whose shape was not "key\tcount" (should be zero in a chain).
  std::uint64_t malformed_lines() const { return malformed_; }

 private:
  std::size_t num_mappers_ = 0;
  std::vector<std::span<const char>> splits_;
  std::vector<std::vector<Entry>> stripes_;      // per-thread parsed lines
  std::vector<std::uint64_t> malformed_stripes_;
  std::vector<Entry> entries_;                   // all lines, sorted in merge
  std::vector<std::pair<std::string, double>> pmi_;
  std::uint64_t malformed_ = 0;
};

}  // namespace supmr::apps
