#include "apps/kmeans.hpp"

#include "core/job.hpp"

#include <cassert>
#include <limits>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>

namespace supmr::apps {

namespace {

std::vector<std::span<const char>> split_lines(std::span<const char> text,
                                               std::size_t max_splits) {
  std::vector<std::span<const char>> splits;
  if (text.empty() || max_splits == 0) return splits;
  const std::size_t target = (text.size() + max_splits - 1) / max_splits;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = std::min(begin + target, text.size());
    while (end < text.size() && text[end - 1] != '\n') ++end;
    splits.push_back(text.subspan(begin, end - begin));
    begin = end;
  }
  return splits;
}

// Parses `dim` doubles from [begin, end); returns false on malformed lines.
bool parse_point(const char* begin, const char* end, std::size_t dim,
                 double* out) {
  const char* p = begin;
  for (std::size_t d = 0; d < dim; ++d) {
    while (p < end && *p == ' ') ++p;
    auto [next, ec] = std::from_chars(p, end, out[d]);
    if (ec != std::errc{}) return false;
    p = next;
  }
  while (p < end && *p == ' ') ++p;
  return p == end;
}

}  // namespace

void ClusterAccumCombiner::combine(ClusterAccum& acc, const ClusterAccum& v) {
  if (v.count == 0) return;
  if (acc.sum.empty()) acc.sum.assign(v.sum.size(), 0.0);
  assert(acc.sum.size() == v.sum.size());
  for (std::size_t d = 0; d < v.sum.size(); ++d) acc.sum[d] += v.sum[d];
  acc.count += v.count;
}

KMeansApp::KMeansApp(KMeansOptions options,
                     std::vector<std::vector<double>> centroids)
    : options_(options), centroids_(std::move(centroids)) {
  assert(centroids_.size() == options_.clusters);
  for (const auto& c : centroids_) {
    assert(c.size() == options_.dim);
    (void)c;
  }
}

void KMeansApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(num_map_threads, options_.clusters);
  assigned_per_thread_.assign(num_map_threads, 0);
  new_centroids_.clear();
}

Status KMeansApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_lines(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

std::size_t KMeansApp::nearest(const double* point) const {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < options_.dim; ++d) {
      const double delta = point[d] - centroids_[c][d];
      d2 += delta * delta;
    }
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

void KMeansApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size());
  std::span<const char> split = splits_[task];
  std::vector<double> point(options_.dim);
  // Thread-local accumulators flushed once per task keep emit costs off the
  // per-point path.
  std::vector<ClusterAccum> local(options_.clusters);
  std::uint64_t assigned = 0;
  std::size_t begin = 0;
  while (begin < split.size()) {
    const void* nl =
        std::memchr(split.data() + begin, '\n', split.size() - begin);
    const std::size_t end =
        nl ? static_cast<std::size_t>(static_cast<const char*>(nl) -
                                      split.data())
           : split.size();
    if (end > begin &&
        parse_point(split.data() + begin, split.data() + end, options_.dim,
                    point.data())) {
      const std::size_t c = nearest(point.data());
      auto& acc = local[c];
      if (acc.sum.empty()) acc.sum.assign(options_.dim, 0.0);
      for (std::size_t d = 0; d < options_.dim; ++d)
        acc.sum[d] += point[d];
      ++acc.count;
      ++assigned;
    }
    begin = end + 1;
  }
  for (std::size_t c = 0; c < options_.clusters; ++c) {
    if (local[c].count > 0) container_.emit(thread_id, c, local[c]);
  }
  assigned_per_thread_[thread_id] += assigned;
}

Status KMeansApp::reduce(ThreadPool& pool, std::size_t num_partitions) {
  (void)num_partitions;  // clusters are few: one task per cluster
  std::vector<ClusterAccum> totals(options_.clusters);
  std::vector<std::function<void(std::size_t)>> tasks;
  for (std::size_t c = 0; c < options_.clusters; ++c) {
    tasks.push_back([this, &totals, c](std::size_t) {
      container_.reduce_range(c, c + 1, &totals[c]);
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  new_centroids_ = centroids_;
  for (std::size_t c = 0; c < options_.clusters; ++c) {
    if (totals[c].count == 0) continue;  // empty cluster: keep old centroid
    for (std::size_t d = 0; d < options_.dim; ++d)
      new_centroids_[c][d] = totals[c].sum[d] / double(totals[c].count);
  }
  return Status::Ok();
}

Status KMeansApp::merge(ThreadPool&, const core::MergePlan&,
                        merge::MergeStats* stats) {
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::uint64_t KMeansApp::points_assigned() const {
  std::uint64_t n = 0;
  for (auto a : assigned_per_thread_) n += a;
  return n;
}

StatusOr<KMeansResult> run_kmeans(
    const ingest::IngestSource& source, const core::JobConfig& config,
    const KMeansOptions& options,
    std::vector<std::vector<double>> initial_centroids,
    std::size_t max_iters, double epsilon) {
  if (initial_centroids.size() != options.clusters) {
    return Status::InvalidArgument("need one initial centroid per cluster");
  }
  KMeansResult result;
  result.centroids = std::move(initial_centroids);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    KMeansApp app(options, result.centroids);
    core::MapReduceJob job(app, source, config);
    SUPMR_ASSIGN_OR_RETURN(core::JobResult jr, job.run(core::ExecMode::kIngestMR));
    (void)jr;
    result.points = app.points_assigned();
    double shift = 0.0;
    for (std::size_t c = 0; c < options.clusters; ++c) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < options.dim; ++d) {
        const double delta =
            app.new_centroids()[c][d] - result.centroids[c][d];
        d2 += delta * delta;
      }
      shift = std::max(shift, std::sqrt(d2));
    }
    result.centroids = app.new_centroids();
    result.iterations = iter + 1;
    result.final_shift = shift;
    if (shift < epsilon) break;
  }
  result.total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace supmr::apps
