#include "apps/tfidf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "apps/pair_count.hpp"  // split_lines
#include "merge/introsort.hpp"

namespace supmr::apps {
namespace {

bool parse_count(std::string_view digits, std::uint64_t* out) {
  if (digits.empty()) return false;
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// Document frequency of an index line = 1 + number of commas in the
// posting list (the list is non-empty by construction).
std::uint32_t posting_size(std::string_view csv) {
  std::uint32_t n = 1;
  for (char c : csv)
    if (c == ',') ++n;
  return n;
}

}  // namespace

void TfIdfApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  stripes_.assign(num_map_threads, {});
  terms_.clear();
  freqs_.clear();
  scores_.clear();
  malformed_ = 0;
}

Status TfIdfApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_lines(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void TfIdfApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size() && thread_id < num_mappers_);
  Stripe& stripe = stripes_[thread_id];
  const std::span<const char> split = splits_[task];
  std::size_t pos = 0;
  while (pos < split.size()) {
    std::size_t eol = pos;
    while (eol < split.size() && split[eol] != '\n') ++eol;
    const std::string_view line(split.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t tab1 = line.find('\t');
    if (tab1 == std::string_view::npos || tab1 == 0) {
      ++stripe.malformed;
      continue;
    }
    const std::size_t tab2 = line.find('\t', tab1 + 1);
    if (tab2 == std::string_view::npos) {
      // Index line: "word\tf1,f2,..." — document frequency.
      stripe.freqs.push_back(DocFreq{std::string(line.substr(0, tab1)),
                                     posting_size(line.substr(tab1 + 1))});
    } else {
      // Doc-term line: "<file_id>\t<word>\t<count>".
      std::uint64_t count = 0;
      if (!parse_count(line.substr(tab2 + 1), &count)) {
        ++stripe.malformed;
        continue;
      }
      stripe.terms.push_back(DocTerm{std::string(line.substr(0, tab2)), count});
    }
  }
}

Status TfIdfApp::reduce(ThreadPool&, std::size_t) {
  // Both upstream encodings carry unique keys, so gathering the stripes is
  // the whole reduce; ordering happens in merge.
  for (auto& s : stripes_) {
    terms_.insert(terms_.end(), std::make_move_iterator(s.terms.begin()),
                  std::make_move_iterator(s.terms.end()));
    freqs_.insert(freqs_.end(), std::make_move_iterator(s.freqs.begin()),
                  std::make_move_iterator(s.freqs.end()));
    malformed_ += s.malformed;
    s = Stripe{};
  }
  return Status::Ok();
}

Status TfIdfApp::merge(ThreadPool&, const core::MergePlan&,
                       merge::MergeStats* stats) {
  merge::introsort(
      terms_.begin(), terms_.end(),
      [](const DocTerm& a, const DocTerm& b) { return a.key < b.key; });
  merge::introsort(
      freqs_.begin(), freqs_.end(),
      [](const DocFreq& a, const DocFreq& b) { return a.word < b.word; });

  // N = distinct documents; terms_ is sorted by "<file_id>\t...", so
  // distinct file-id prefixes arrive grouped.
  double n_docs = 0;
  std::string_view last_doc;
  bool have_last = false;
  for (const DocTerm& t : terms_) {
    const std::string_view doc =
        std::string_view(t.key).substr(0, t.key.find('\t'));
    if (!have_last || doc != last_doc) {
      n_docs += 1;
      last_doc = doc;
      have_last = true;
    }
  }
  auto df_of = [&](std::string_view word) -> double {
    auto it = std::lower_bound(
        freqs_.begin(), freqs_.end(), word,
        [](const DocFreq& f, std::string_view w) { return f.word < w; });
    if (it == freqs_.end() || it->word != word) return 0;
    return static_cast<double>(it->df);
  };

  scores_.clear();
  scores_.reserve(terms_.size());
  for (const DocTerm& t : terms_) {
    const std::size_t tab = t.key.find('\t');
    const double df = df_of(std::string_view(t.key).substr(tab + 1));
    if (df <= 0 || n_docs <= 0) continue;  // word unseen by the index side
    scores_.emplace_back(t.key, static_cast<double>(t.count) *
                                    std::log(n_docs / df));
  }
  terms_.clear();
  freqs_.clear();
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::string TfIdfApp::canonical_output() const {
  std::string out;
  char buf[32];
  for (const auto& [key, value] : scores_) {
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out += key;
    out += '\t';
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
