// Inverted index — word -> sorted list of files containing it.
//
// The many-small-files application: it requires intra-file chunking
// (MultiFileSource), because file identity must survive chunk coalescing —
// the chunk's FileSpans say which file each byte came from. Map emits
// (word, file_id) with an append combiner; reduce merges and de-duplicates
// the posting lists; merge sorts the dictionary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/combining.hpp"
#include "core/application.hpp"

namespace supmr::apps {

class InvertedIndexApp final : public core::Application {
 public:
  struct Posting {
    std::string word;
    std::vector<std::uint32_t> files;  // sorted, unique
  };

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return tasks_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return index_.size(); }
  std::string canonical_output() const override;

  core::CombinerKind combiner_kind() const override {
    return core::CombinerKind::kAppend;
  }
  Status use_container(core::ContainerMode mode) override {
    container_.select(mode);
    return Status::Ok();
  }
  core::CombineStats combine_stats() const override {
    return container_.stats();
  }

  // The index, sorted by word.
  const std::vector<Posting>& index() const { return index_; }

 private:
  struct FileTask {
    std::span<const char> text;
    std::uint32_t file_id = 0;
  };

  std::size_t num_mappers_ = 0;
  containers::SwitchedContainer<containers::AppendCombiner<std::uint32_t>>
      container_;
  // Each round task covers one or more whole files (file identity must not
  // be split across mappers mid-file for position-free postings; the span
  // granularity is the file).
  std::vector<std::vector<FileTask>> tasks_;
  std::vector<Posting> index_;
  std::vector<std::vector<Posting>> partitions_;
};

}  // namespace supmr::apps
