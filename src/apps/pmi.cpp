#include "apps/pmi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "apps/pair_count.hpp"  // split_lines
#include "merge/introsort.hpp"

namespace supmr::apps {
namespace {

// Parses "key\tcount". Returns false on any malformed shape.
bool parse_line(std::string_view line, std::string_view* key,
                std::uint64_t* count) {
  const std::size_t tab = line.find('\t');
  if (tab == std::string_view::npos || tab == 0) return false;
  std::uint64_t value = 0;
  std::size_t i = tab + 1;
  if (i >= line.size()) return false;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *key = line.substr(0, tab);
  *count = value;
  return true;
}

}  // namespace

void PmiApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  stripes_.assign(num_map_threads, {});
  malformed_stripes_.assign(num_map_threads, 0);
  entries_.clear();
  pmi_.clear();
  malformed_ = 0;
}

Status PmiApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_lines(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void PmiApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size() && thread_id < num_mappers_);
  const std::span<const char> split = splits_[task];
  std::size_t pos = 0;
  while (pos < split.size()) {
    std::size_t eol = pos;
    while (eol < split.size() && split[eol] != '\n') ++eol;
    const std::string_view line(split.data() + pos, eol - pos);
    if (!line.empty()) {
      std::string_view key;
      std::uint64_t count = 0;
      if (parse_line(line, &key, &count)) {
        stripes_[thread_id].push_back(Entry{std::string(key), count});
      } else {
        ++malformed_stripes_[thread_id];
      }
    }
    pos = eol + 1;
  }
}

Status PmiApp::reduce(ThreadPool&, std::size_t) {
  // Keys are globally unique across both upstreams, so "reduce" is just
  // gathering the stripes; the global order is established in merge.
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s.size();
  entries_.clear();
  entries_.reserve(total);
  for (auto& s : stripes_) {
    entries_.insert(entries_.end(), std::make_move_iterator(s.begin()),
                    std::make_move_iterator(s.end()));
    s.clear();
  }
  for (auto m : malformed_stripes_) malformed_ += m;
  return Status::Ok();
}

Status PmiApp::merge(ThreadPool&, const core::MergePlan&,
                     merge::MergeStats* stats) {
  merge::introsort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });

  // Pass 1: totals and the unigram table (entries_ is sorted, so the
  // unigram subset is sorted too — binary search below).
  std::vector<const Entry*> unigrams;
  double n_words = 0, n_pairs = 0;
  for (const Entry& e : entries_) {
    if (e.key.find(' ') == std::string::npos) {
      unigrams.push_back(&e);
      n_words += static_cast<double>(e.count);
    } else {
      n_pairs += static_cast<double>(e.count);
    }
  }
  auto unigram_count = [&](std::string_view word) -> double {
    auto it = std::lower_bound(
        unigrams.begin(), unigrams.end(), word,
        [](const Entry* e, std::string_view w) { return e->key < w; });
    if (it == unigrams.end() || (*it)->key != word) return 0;
    return static_cast<double>((*it)->count);
  };

  // Pass 2: PMI per pair, in sorted pair-key order.
  pmi_.clear();
  for (const Entry& e : entries_) {
    const std::size_t space = e.key.find(' ');
    if (space == std::string::npos) continue;
    const double c1 = unigram_count(std::string_view(e.key).substr(0, space));
    const double c2 = unigram_count(std::string_view(e.key).substr(space + 1));
    if (c1 <= 0 || c2 <= 0 || n_pairs <= 0 || n_words <= 0) continue;
    const double joint = static_cast<double>(e.count) / n_pairs;
    const double indep = (c1 / n_words) * (c2 / n_words);
    pmi_.emplace_back(e.key, std::log(joint / indep));
  }
  entries_.clear();
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::string PmiApp::canonical_output() const {
  std::string out;
  char buf[32];
  for (const auto& [key, value] : pmi_) {
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out += key;
    out += '\t';
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
