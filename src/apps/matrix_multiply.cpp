#include "apps/matrix_multiply.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace supmr::apps {

MatrixMultiplyApp::MatrixMultiplyApp(std::vector<double> a, std::size_t n)
    : a_(std::move(a)), n_(n) {
  assert(a_.size() == n_ * n_ && n_ > 0);
}

void MatrixMultiplyApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(n_ * sizeof(double));
  frobenius_ = 0.0;
}

Status MatrixMultiplyApp::prepare_round(const ingest::IngestChunk& chunk) {
  const std::uint64_t rb = n_ * sizeof(double);
  const std::span<const char> bytes = chunk.bytes();
  if (bytes.size() % rb != 0) {
    return Status::InvalidArgument(
        "chunk is not a whole number of matrix columns");
  }
  const std::uint64_t cols = bytes.size() / rb;
  const std::uint64_t base = container_.claim(cols);
  tasks_.clear();
  if (cols == 0) return Status::Ok();
  const std::uint64_t per = (cols + num_mappers_ - 1) / num_mappers_;
  for (std::uint64_t first = 0; first < cols; first += per) {
    const std::uint64_t m = std::min(per, cols - first);
    tasks_.push_back(RoundTask{bytes.data() + first * rb, base + first,
                               m});
  }
  return Status::Ok();
}

void MatrixMultiplyApp::map_task(std::size_t task, std::size_t thread_id) {
  (void)thread_id;
  const RoundTask& t = tasks_[task];
  const std::uint64_t rb = n_ * sizeof(double);
  std::vector<double> b(n_), c(n_);
  for (std::uint64_t col = 0; col < t.num_columns; ++col) {
    std::memcpy(b.data(), t.src + col * rb, rb);
    // c = A * b, row-major A.
    for (std::size_t i = 0; i < n_; ++i) {
      double acc = 0.0;
      const double* row = a_.data() + i * n_;
      for (std::size_t k = 0; k < n_; ++k) acc += row[k] * b[k];
      c[i] = acc;
    }
    container_.write_record(
        t.first_slot + col,
        std::span<const char>(reinterpret_cast<const char*>(c.data()), rb));
  }
}

Status MatrixMultiplyApp::reduce(ThreadPool& pool,
                                 std::size_t num_partitions) {
  const std::uint64_t cols = container_.size();
  std::vector<double> partial(num_partitions, 0.0);
  std::vector<std::function<void(std::size_t)>> tasks;
  const std::uint64_t per = (cols + num_partitions - 1) / num_partitions;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const std::uint64_t first = p * per;
    if (first >= cols) break;
    const std::uint64_t last = std::min(first + per, cols);
    tasks.push_back([this, &partial, p, first, last](std::size_t) {
      double sum = 0.0;
      for (std::uint64_t j = first; j < last; ++j) {
        const double* col = column(j);
        for (std::size_t i = 0; i < n_; ++i) sum += col[i] * col[i];
      }
      partial[p] = sum;
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  double total = 0.0;
  for (double s : partial) total += s;
  frobenius_ = std::sqrt(total);
  return Status::Ok();
}

Status MatrixMultiplyApp::merge(ThreadPool&, const core::MergePlan&,
                                merge::MergeStats* stats) {
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::string MatrixMultiplyApp::columns_to_records(
    const std::vector<double>& m, std::size_t n) {
  assert(m.size() == n * n);
  std::string out(n * n * sizeof(double), '\0');
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(out.data() + (j * n + i) * sizeof(double),
                  &m[i * n + j], sizeof(double));
    }
  }
  return out;
}

}  // namespace supmr::apps
