// TF-IDF join — the sink stage of the TF-IDF chain (docs/graphs.md).
//
// Input is the concatenation of two upstream canonical outputs over the
// SAME multi-file corpus: InvertedIndexApp ("word\tf1,f2,...\n", one tab)
// and DocTermCountApp ("<file_id>\t<word>\t<count>\n", two tabs). The tab
// count is the discriminator. From the index side the join reads each
// word's document frequency df = |posting|; from the doc-term side it reads
// the term counts and the set of documents N. Merge emits, per (doc, term),
//
//   tfidf = count * ln(N / df)
//
// as "<file_id>\t<word>\t<tfidf>\n" (fixed "%.6f" formatting) in
// composite-key order — the same order DocTermCountApp produces.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/application.hpp"

namespace supmr::apps {

class TfIdfApp final : public core::Application {
 public:
  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return scores_.size(); }
  std::string canonical_output() const override;

  // ("<file_id>\t<word>", tfidf) sorted by the composite key.
  const std::vector<std::pair<std::string, double>>& results() const {
    return scores_;
  }
  std::uint64_t malformed_lines() const { return malformed_; }

 private:
  struct DocTerm {
    std::string key;  // "<file_id>\t<word>"
    std::uint64_t count = 0;
  };
  struct DocFreq {
    std::string word;
    std::uint32_t df = 0;
  };
  struct Stripe {
    std::vector<DocTerm> terms;
    std::vector<DocFreq> freqs;
    std::uint64_t malformed = 0;
  };

  std::size_t num_mappers_ = 0;
  std::vector<std::span<const char>> splits_;
  std::vector<Stripe> stripes_;
  std::vector<DocTerm> terms_;
  std::vector<DocFreq> freqs_;
  std::vector<std::pair<std::string, double>> scores_;
  std::uint64_t malformed_ = 0;
};

}  // namespace supmr::apps
