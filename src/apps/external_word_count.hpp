// Word count with bounded memory: external aggregation through the
// spilling hash container.
//
// Identical map semantics to WordCountApp, but the intermediate (word,
// count) set is held under a memory budget: after each map round the
// runtime's prepare_round hook gives the app a coordinator-context moment
// to spill oversized stripes as sorted combined runs. The reduce phase is a
// streaming k-way combining merge, and merge is a no-op (the stream is
// already key-sorted) — so this app's output is byte-identical to
// WordCountApp's at any budget.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "containers/spilling_hash.hpp"
#include "core/application.hpp"

namespace supmr::apps {

class ExternalWordCountApp final : public core::Application {
 public:
  using Result = std::pair<std::string, std::uint64_t>;

  explicit ExternalWordCountApp(
      containers::SpillingHashContainer::Options options)
      : options_(options) {}

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return results_.size(); }
  std::string canonical_output() const override;

  core::ShardKind shard_kind() const override {
    return core::ShardKind::kSortedKeys;
  }

  // (word, count) sorted by word — same contract as WordCountApp.
  const std::vector<Result>& results() const { return results_; }
  std::size_t runs_spilled() const { return runs_spilled_; }

 private:
  containers::SpillingHashContainer::Options options_;
  std::size_t num_mappers_ = 0;
  containers::SpillingHashContainer container_;
  std::vector<std::span<const char>> splits_;
  std::vector<Result> results_;
  std::size_t runs_spilled_ = 0;
};

}  // namespace supmr::apps
