#include "apps/histogram.hpp"

#include <cassert>
#include <charconv>
#include <cstring>

namespace supmr::apps {

namespace {

// Splits at line boundaries, like grep.
std::vector<std::span<const char>> split_lines(std::span<const char> text,
                                               std::size_t max_splits) {
  std::vector<std::span<const char>> splits;
  if (text.empty() || max_splits == 0) return splits;
  const std::size_t target = (text.size() + max_splits - 1) / max_splits;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = std::min(begin + target, text.size());
    while (end < text.size() && text[end - 1] != '\n') ++end;
    splits.push_back(text.subspan(begin, end - begin));
    begin = end;
  }
  return splits;
}

// Fixed-width big-endian bin keys: unique per bin, lossless to decode, and
// ordered the same way as the bin indices.
void encode_bin_key(std::uint64_t bin, char out[8]) {
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<char>(bin & 0xff);
    bin >>= 8;
  }
}

std::uint64_t decode_bin_key(std::string_view key) {
  assert(key.size() == 8);
  std::uint64_t bin = 0;
  for (unsigned char c : key) bin = (bin << 8) | c;
  return bin;
}

}  // namespace

std::size_t HistogramApp::bin_of(std::int64_t value) const {
  // Exact integer binning: floating-point (value/range)*bins rounds values
  // on bin edges into the wrong bin (e.g. 29/100*100 -> 28.999...).
  if (value <= options_.lo) return 0;
  if (value >= options_.hi) return options_.bins - 1;
  const unsigned __int128 offset =
      static_cast<unsigned __int128>(value - options_.lo);
  const unsigned __int128 range =
      static_cast<unsigned __int128>(options_.hi - options_.lo);
  return static_cast<std::size_t>(offset * options_.bins / range);
}

Status HistogramApp::use_container(core::ContainerMode mode) {
  if (container_.initialized() || combining_.initialized())
    return Status::FailedPrecondition(
        "use_container: histogram container already initialized");
  container_mode_ = mode;
  return Status::Ok();
}

core::CombineStats HistogramApp::combine_stats() const {
  return combining() ? combining_.stats() : core::CombineStats{};
}

void HistogramApp::init(std::size_t num_map_threads) {
  assert(options_.hi > options_.lo && options_.bins > 0);
  num_mappers_ = num_map_threads;
  if (combining())
    combining_.init(num_map_threads, options_.bins);
  else
    container_.init(num_map_threads, options_.bins);
  parsed_per_thread_.assign(num_map_threads, 0);
  dropped_per_thread_.assign(num_map_threads, 0);
  counts_.clear();
}

Status HistogramApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_lines(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void HistogramApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size());
  std::span<const char> split = splits_[task];
  std::uint64_t parsed = 0, dropped = 0;
  std::size_t begin = 0;
  while (begin < split.size()) {
    const void* nl =
        std::memchr(split.data() + begin, '\n', split.size() - begin);
    const std::size_t end =
        nl ? static_cast<std::size_t>(static_cast<const char*>(nl) -
                                      split.data())
           : split.size();
    std::int64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(split.data() + begin, split.data() + end, value);
    if (ec == std::errc{} && ptr == split.data() + end) {
      if (value >= options_.lo && value < options_.hi) {
        if (combining()) {
          char key[8];
          encode_bin_key(bin_of(value), key);
          combining_.emit(thread_id, std::string_view(key, sizeof(key)),
                          std::uint64_t{1});
        } else {
          container_.emit(thread_id, bin_of(value), std::uint64_t{1});
        }
        ++parsed;
      } else {
        ++dropped;
      }
    } else if (end > begin) {
      ++dropped;  // malformed line
    }
    begin = end + 1;
  }
  parsed_per_thread_[thread_id] += parsed;
  dropped_per_thread_[thread_id] += dropped;
}

Status HistogramApp::reduce(ThreadPool& pool, std::size_t num_partitions) {
  counts_.assign(options_.bins, 0);
  std::vector<std::function<void(std::size_t)>> tasks;
  if (combining()) {
    // Hash partitions instead of bin ranges: each bin key lives in exactly
    // one partition, so the tasks write disjoint counts_ entries.
    for (std::size_t p = 0; p < num_partitions; ++p) {
      tasks.push_back([this, p, num_partitions](std::size_t) {
        for (const auto& [key, count] :
             combining_.reduce_partition(p, num_partitions)) {
          counts_[decode_bin_key(key)] += count;
        }
      });
    }
  } else {
    const std::size_t per =
        (options_.bins + num_partitions - 1) / num_partitions;
    for (std::size_t p = 0; p < num_partitions; ++p) {
      const std::size_t first = p * per;
      if (first >= options_.bins) break;
      const std::size_t last = std::min(first + per, options_.bins);
      tasks.push_back([this, first, last](std::size_t) {
        container_.reduce_range(first, last, counts_.data() + first);
      });
    }
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  return Status::Ok();
}

Status HistogramApp::merge(ThreadPool&, const core::MergePlan&,
                           merge::MergeStats* stats) {
  // Bins are already in key order: nothing to merge.
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::uint64_t HistogramApp::values_parsed() const {
  std::uint64_t n = 0;
  for (auto v : parsed_per_thread_) n += v;
  return n;
}

std::uint64_t HistogramApp::values_out_of_range() const {
  std::uint64_t n = 0;
  for (auto v : dropped_per_thread_) n += v;
  return n;
}

std::string HistogramApp::canonical_output() const {
  // Bins are dense and key-ordered by construction; the parsed/dropped
  // totals ride along so a run that silently drops values cannot match.
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out += std::to_string(b);
    out += '\t';
    out += std::to_string(counts_[b]);
    out += '\n';
  }
  out += "parsed\t" + std::to_string(values_parsed()) + '\n';
  out += "dropped\t" + std::to_string(values_out_of_range()) + '\n';
  return out;
}

}  // namespace supmr::apps
