#include "apps/inverted_index.hpp"

#include <algorithm>
#include <cassert>

#include "apps/tokenize.hpp"
#include "merge/introsort.hpp"
#include "merge/pway.hpp"

namespace supmr::apps {

void InvertedIndexApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(num_map_threads, /*capacity_hint=*/4096);
  index_.clear();
  partitions_.clear();
}

Status InvertedIndexApp::prepare_round(const ingest::IngestChunk& chunk) {
  if (chunk.files.empty()) {
    return Status::InvalidArgument(
        "inverted index requires intra-file chunking (MultiFileSource): "
        "chunk carries no file spans");
  }
  // Distribute whole files round-robin over at most num_mappers_ tasks.
  tasks_.assign(std::min(num_mappers_, chunk.files.size()), {});
  std::size_t next = 0;
  for (const ingest::FileSpan& span : chunk.files) {
    tasks_[next].push_back(FileTask{
        chunk.bytes().subspan(span.offset_in_chunk, span.length),
        static_cast<std::uint32_t>(span.file_index)});
    next = (next + 1) % tasks_.size();
  }
  return Status::Ok();
}

void InvertedIndexApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < tasks_.size());
  for (const FileTask& file : tasks_[task]) {
    tokenize_words(file.text, [&](std::string_view word) {
      container_.emit(thread_id, word, file.file_id);
    });
  }
}

Status InvertedIndexApp::reduce(ThreadPool& pool,
                                std::size_t num_partitions) {
  partitions_.assign(num_partitions, {});
  std::vector<std::function<void(std::size_t)>> tasks;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    tasks.push_back([this, p, num_partitions](std::size_t) {
      auto pairs = container_.reduce_partition(p, num_partitions);
      partitions_[p].reserve(pairs.size());
      for (auto& [word, files] : pairs) {
        std::sort(files.begin(), files.end());
        files.erase(std::unique(files.begin(), files.end()), files.end());
        partitions_[p].push_back(Posting{std::move(word), std::move(files)});
      }
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  return Status::Ok();
}

Status InvertedIndexApp::merge(ThreadPool& pool, const core::MergePlan& plan,
                               merge::MergeStats* stats) {
  auto by_word = [](const Posting& a, const Posting& b) {
    return a.word < b.word;
  };
  std::vector<std::function<void(std::size_t)>> sort_tasks;
  for (auto& part : partitions_) {
    sort_tasks.push_back([&part, &by_word](std::size_t) {
      merge::introsort(part.begin(), part.end(), by_word);
    });
  }
  if (!pool.run_wave(sort_tasks))
    return Status::Internal("merge sort wave dropped: thread pool shut down");

  std::uint64_t total = 0;
  for (const auto& part : partitions_) total += part.size();
  index_.resize(total);

  merge::MergeStats local;
  if (plan.mode != core::MergeMode::kPairwise) {
    // kPWay and kPartitioned both take the single-round p-way kernel; under
    // kPartitioned the plan's partition count sets the key-space split (the
    // hash-sharded reduce partitions carry no key ordering to exploit).
    std::vector<std::span<const Posting>> runs;
    for (const auto& part : partitions_)
      runs.push_back(std::span<const Posting>(part.data(), part.size()));
    const std::size_t p = plan.mode == core::MergeMode::kPartitioned
                              ? plan.partitions
                              : 0;  // 0 = pool-sized
    local = merge::parallel_pway_merge(pool, std::move(runs), index_.data(),
                                       by_word, p);
  } else {
    // Pairwise mode: sequential k-way concatenation + sort is acceptable for
    // the dictionary-sized output; keep the baseline honest by re-sorting.
    std::size_t offset = 0;
    for (auto& part : partitions_) {
      std::move(part.begin(), part.end(), index_.begin() + offset);
      offset += part.size();
    }
    merge::introsort(index_.begin(), index_.end(), by_word);
  }
  partitions_.clear();
  if (stats != nullptr) *stats = std::move(local);
  return Status::Ok();
}

std::string InvertedIndexApp::canonical_output() const {
  std::string out;
  for (const auto& posting : index_) {
    out += posting.word;
    out += '\t';
    for (std::size_t i = 0; i < posting.files.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(posting.files[i]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
