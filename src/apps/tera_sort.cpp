#include "apps/tera_sort.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>

#include "merge/pairwise.hpp"
#include "merge/partitioned.hpp"
#include "merge/pway.hpp"
#include "merge/sample_sort.hpp"

namespace supmr::apps {

void TeraSortApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  if (partitioned()) {
    pcontainer_.init(options_.record_bytes, options_.key_bytes,
                     options_.partitions, num_map_threads);
  } else {
    container_.init(options_.record_bytes);
  }
  checksum_ = 0;
  malformed_ = 0;
  sorted_.clear();
}

Status TeraSortApp::prepare_round(const ingest::IngestChunk& chunk) {
  const std::uint64_t rb = options_.record_bytes;
  const std::span<const char> bytes = chunk.bytes();
  if (bytes.size() % rb != 0) {
    return Status::InvalidArgument(
        "chunk size " + std::to_string(bytes.size()) +
        " is not a whole number of " + std::to_string(rb) + "-byte records");
  }
  const std::uint64_t records = bytes.size() / rb;
  std::uint64_t base = 0;
  if (partitioned()) {
    // Splitters come from the first non-empty chunk (sample-sort style);
    // later chunks route through the same cuts, so partitions stay
    // key-coherent across the whole ingest stream.
    if (records > 0 && pcontainer_.num_splitters() == 0) {
      pcontainer_.sample_splitters(bytes);
    }
  } else {
    // One atomic extend for the whole round (may reallocate — no mappers are
    // running yet), then each mapper fills a disjoint slot range.
    base = container_.claim(records);
  }
  tasks_.clear();
  if (records == 0) return Status::Ok();
  const std::uint64_t per =
      (records + num_mappers_ - 1) / num_mappers_;
  for (std::uint64_t first = 0; first < records; first += per) {
    const std::uint64_t n = std::min(per, records - first);
    tasks_.push_back(RoundTask{bytes.data() + first * rb, base + first,
                               n});
  }
  return Status::Ok();
}

void TeraSortApp::map_task(std::size_t task, std::size_t thread_id) {
  // Flat container: the claimed slot range is the isolation. Partitioned
  // container: the (partition, thread_id) stripe is — wave scheduling
  // guarantees distinct thread_ids within a wave (application.hpp).
  assert(task < tasks_.size());
  const RoundTask& t = tasks_[task];
  const std::uint64_t rb = options_.record_bytes;
  std::uint64_t bad = 0;
  for (std::uint64_t r = 0; r < t.num_records; ++r) {
    const char* rec = t.src + r * rb;
    if (options_.validate_terminators &&
        (rec[rb - 2] != '\r' || rec[rb - 1] != '\n')) {
      ++bad;
    }
    if (partitioned()) {
      pcontainer_.append(thread_id, std::span<const char>(rec, rb));
    } else {
      container_.write_record(t.first_slot + r,
                              std::span<const char>(rec, rb));
    }
  }
  if (bad > 0) malformed_.fetch_add(bad, std::memory_order_relaxed);
}

Status TeraSortApp::reduce(ThreadPool& pool, std::size_t num_partitions) {
  // Sort's reduce touches every key once (identity coalescing with unique
  // keys): we fold the first 8 key bytes of every record into an
  // order-invariant checksum, partitioned across the pool.
  if (partitioned()) {
    // One task per key-space partition; each walks its own stripes.
    const std::size_t P = pcontainer_.partitions();
    const std::uint64_t rb = options_.record_bytes;
    const std::size_t key8 = std::min<std::size_t>(8, options_.key_bytes);
    std::vector<std::uint64_t> partial(P, 0);
    std::vector<std::function<void(std::size_t)>> tasks;
    for (std::size_t p = 0; p < P; ++p) {
      tasks.push_back([this, &partial, p, rb, key8](std::size_t) {
        std::uint64_t sum = 0;
        for (std::size_t t = 0; t < pcontainer_.threads(); ++t) {
          const std::span<const char> s = pcontainer_.stripe(p, t);
          for (std::size_t off = 0; off + rb <= s.size(); off += rb) {
            std::uint64_t k = 0;
            std::memcpy(&k, s.data() + off, key8);
            sum += k;
          }
        }
        partial[p] = sum;
      });
    }
    if (!pool.run_wave(tasks))
      return Status::Internal("reduce wave dropped: thread pool shut down");
    checksum_ = 0;
    for (auto s : partial) checksum_ += s;
    return Status::Ok();
  }

  const std::uint64_t n = container_.size();
  std::vector<std::uint64_t> partial(num_partitions, 0);
  std::vector<std::function<void(std::size_t)>> tasks;
  const std::uint64_t per = (n + num_partitions - 1) / num_partitions;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const std::uint64_t first = p * per;
    if (first >= n) break;
    const std::uint64_t last = std::min(first + per, n);
    tasks.push_back([this, &partial, p, first, last](std::size_t) {
      std::uint64_t sum = 0;
      for (std::uint64_t r = first; r < last; ++r) {
        std::uint64_t k = 0;
        std::memcpy(&k, container_.record(r).data(),
                    std::min<std::size_t>(8, options_.key_bytes));
        sum += k;
      }
      partial[p] = sum;
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  checksum_ = 0;
  for (auto s : partial) checksum_ += s;
  return Status::Ok();
}

Status TeraSortApp::merge_partitioned(ThreadPool& pool,
                                      merge::MergeStats* stats) {
  // The shuffle already happened at map time: partition p's stripes hold
  // exactly p's key range. Merge = one pointer-sort + loser-tree merge per
  // partition (merge/partitioned.hpp waves), then one materialization pass —
  // no global round, no scratch copy-back.
  const std::uint64_t rb = options_.record_bytes;
  const std::uint32_t kb = options_.key_bytes;
  const std::size_t P = pcontainer_.partitions();
  const std::uint64_t n = pcontainer_.total_records();

  auto cmp = [kb](const char* a, const char* b) {
    return std::memcmp(a, b, kb) < 0;
  };

  // One pointer run per non-empty (partition, thread) stripe. The pointer
  // vectors outlive the merge; partitioned_merge sorts each run in place.
  std::vector<std::vector<std::vector<const char*>>> ptrs(P);
  std::vector<std::vector<std::span<const char*>>> partitions(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t t = 0; t < pcontainer_.threads(); ++t) {
      const std::span<const char> s = pcontainer_.stripe(p, t);
      if (s.empty()) continue;
      std::vector<const char*> run;
      run.reserve(s.size() / rb);
      for (std::size_t off = 0; off + rb <= s.size(); off += rb)
        run.push_back(s.data() + off);
      ptrs[p].push_back(std::move(run));
    }
    for (auto& run : ptrs[p])
      partitions[p].push_back(std::span<const char*>(run.data(), run.size()));
  }

  std::vector<const char*> order(n);
  merge::MergeStats local =
      merge::partitioned_merge(pool, std::move(partitions), order.data(), cmp);

  sorted_.resize(n * rb);
  if (!parallel_for(pool, n, [&](std::size_t first, std::size_t last,
                                 std::size_t) {
        for (std::size_t i = first; i < last; ++i) {
          std::memcpy(sorted_.data() + i * rb, order[i], rb);
        }
      }))
    return Status::Internal("merge wave dropped: thread pool shut down");

  if (stats != nullptr) *stats = std::move(local);
  return Status::Ok();
}

Status TeraSortApp::merge(ThreadPool& pool, const core::MergePlan& plan,
                          merge::MergeStats* stats) {
  if (partitioned()) return merge_partitioned(pool, stats);

  const std::uint64_t n = container_.size();
  const std::uint64_t rb = options_.record_bytes;
  const std::uint32_t kb = options_.key_bytes;
  const char* data = container_.data();

  auto cmp = [data, rb, kb](std::uint64_t a, std::uint64_t b) {
    return std::memcmp(data + a * rb, data + b * rb, kb) < 0;
  };

  // Sort an index array (8-byte moves instead of 100-byte record moves).
  std::vector<std::uint64_t> index(n);
  for (std::uint64_t i = 0; i < n; ++i) index[i] = i;

  merge::MergeStats local;
  const std::size_t num_runs = std::max<std::size_t>(2, pool.size() * 2);
  if (plan.mode == core::MergeMode::kPartitioned) {
    // Flat container but a partitioned plan: bucket the index array by
    // sampled splitters at merge time (merge-time fallback — map-time
    // sharding needs options.partitions > 0).
    local = merge::partitioned_sort(
        pool, std::span<std::uint64_t>(index.data(), index.size()), cmp,
        plan.partitions);
  } else if (plan.mode == core::MergeMode::kPWay) {
    local = merge::parallel_sample_sort(
        pool, std::span<std::uint64_t>(index.data(), index.size()), cmp,
        num_runs);
  } else {
    local = merge::pairwise_merge_sort(
        pool, std::span<std::uint64_t>(index.data(), index.size()), cmp,
        num_runs);
  }

  // Materialize the permuted records in parallel.
  sorted_.resize(n * rb);
  if (!parallel_for(pool, n, [&](std::size_t first, std::size_t last,
                                 std::size_t) {
        for (std::size_t i = first; i < last; ++i) {
          std::memcpy(sorted_.data() + i * rb, data + index[i] * rb, rb);
        }
      }))
    return Status::Internal("merge wave dropped: thread pool shut down");

  if (stats != nullptr) *stats = std::move(local);
  return Status::Ok();
}

std::string TeraSortApp::canonical_output() const {
  // The sort contract fixes the KEY order but leaves ties between
  // equal-key records unspecified (stability is not promised). Normalize
  // only within each run of adjacent equal keys — sorting those records by
  // their full bytes — so two correct runs encode identically while a
  // globally mis-ordered output (wrong comparator, wrong routing) still
  // differs: a misplaced record changes which records are adjacent.
  const std::size_t rb = options_.record_bytes;
  const std::size_t kb = options_.key_bytes;
  std::string out;
  if (rb == 0) return out;
  const std::size_t n = sorted_.size() / rb;
  out.reserve(n * rb);
  std::vector<const char*> run;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && std::memcmp(sorted_.data() + i * rb,
                                sorted_.data() + j * rb, kb) == 0) {
      ++j;
    }
    run.clear();
    for (std::size_t r = i; r < j; ++r) run.push_back(sorted_.data() + r * rb);
    std::sort(run.begin(), run.end(), [rb](const char* a, const char* b) {
      return std::memcmp(a, b, rb) < 0;
    });
    for (const char* rec : run) out.append(rec, rb);
    i = j;
  }
  return out;
}

}  // namespace supmr::apps
