#include "apps/linear_regression.hpp"

#include <cassert>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "common/rng.hpp"

namespace supmr::apps {

namespace {

std::vector<std::span<const char>> split_lines(std::span<const char> text,
                                               std::size_t max_splits) {
  std::vector<std::span<const char>> splits;
  if (text.empty() || max_splits == 0) return splits;
  const std::size_t target = (text.size() + max_splits - 1) / max_splits;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = std::min(begin + target, text.size());
    while (end < text.size() && text[end - 1] != '\n') ++end;
    splits.push_back(text.subspan(begin, end - begin));
    begin = end;
  }
  return splits;
}

}  // namespace

void LinearRegressionApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  if (per_thread_.empty()) per_thread_.assign(num_map_threads, Stats{});
  totals_ = Stats{};
}

Status LinearRegressionApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_lines(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void LinearRegressionApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size() && thread_id < per_thread_.size());
  std::span<const char> split = splits_[task];
  Stats local;
  std::size_t begin = 0;
  while (begin < split.size()) {
    const void* nl =
        std::memchr(split.data() + begin, '\n', split.size() - begin);
    const std::size_t end =
        nl ? static_cast<std::size_t>(static_cast<const char*>(nl) -
                                      split.data())
           : split.size();
    double x = 0.0, y = 0.0;
    auto [px, ecx] = std::from_chars(split.data() + begin,
                                     split.data() + end, x);
    if (ecx == std::errc{}) {
      while (px < split.data() + end && *px == ' ') ++px;
      auto [py, ecy] = std::from_chars(px, split.data() + end, y);
      if (ecy == std::errc{} && py == split.data() + end) {
        ++local.n;
        local.sx += x;
        local.sy += y;
        local.sxx += x * x;
        local.sxy += x * y;
      }
    }
    begin = end + 1;
  }
  Stats& acc = per_thread_[thread_id];
  acc.n += local.n;
  acc.sx += local.sx;
  acc.sy += local.sy;
  acc.sxx += local.sxx;
  acc.sxy += local.sxy;
}

Status LinearRegressionApp::reduce(ThreadPool&, std::size_t) {
  totals_ = Stats{};
  for (const Stats& s : per_thread_) {
    totals_.n += s.n;
    totals_.sx += s.sx;
    totals_.sy += s.sy;
    totals_.sxx += s.sxx;
    totals_.sxy += s.sxy;
  }
  if (totals_.n >= 2) {
    const double n = double(totals_.n);
    const double denom = n * totals_.sxx - totals_.sx * totals_.sx;
    if (denom != 0.0) {
      slope_ = (n * totals_.sxy - totals_.sx * totals_.sy) / denom;
      intercept_ = (totals_.sy - slope_ * totals_.sx) / n;
    }
  }
  return Status::Ok();
}

Status LinearRegressionApp::merge(ThreadPool&, const core::MergePlan&,
                                  merge::MergeStats* stats) {
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::string generate_xy(std::uint64_t num_points, double slope,
                        double intercept, double noise, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string out;
  out.reserve(num_points * 24);
  char buf[64];
  for (std::uint64_t i = 0; i < num_points; ++i) {
    const double x = rng.uniform_double() * 1000.0;
    const double eps = (rng.uniform_double() - 0.5) * 2.0 * noise;
    const double y = slope * x + intercept + eps;
    const int n = std::snprintf(buf, sizeof(buf), "%.5f %.5f\n", x, y);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace supmr::apps
