// Chained-app graph assembly: the JobGraphs behind the pmi | tfidf | msort
// replay apps (docs/graphs.md).
//
// Each builder returns a JobGraph whose stage geometry (threads, ExecMode,
// merge mode, chunking, io) comes from the ReplaySpec cell. The graph holds
// app FACTORIES, so the same graph object serves both the SUT executor
// (graph::run_graph) and the sequential oracle (ref::run_graph) — each
// instantiates fresh applications. Callers provide the corpus as devices
// and keep them alive for the graph's lifetime.
#pragma once

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "core/replay.hpp"
#include "graph/job_graph.hpp"
#include "storage/device.hpp"

namespace supmr::apps {

// Corpus roots for make_chain: pmi and msort read `device` (text / terasort
// records); tfidf reads `files` (multi-text).
struct ChainInputs {
  std::shared_ptr<const storage::Device> device;
  std::vector<std::shared_ptr<const storage::Device>> files;
};

// Builds the chain for spec.app:
//   pmi   — wordcount + paircount over the same text -> PMI join
//   tfidf — inverted index + doc-term counts over the same files -> TF-IDF
//   msort — scatter (bucket by key prefix) -> terasort, CrlfFormat edge
// InvalidArgument for non-graph apps or missing inputs.
StatusOr<graph::JobGraph> make_chain(const core::ReplaySpec& spec,
                                     const ChainInputs& inputs);

}  // namespace supmr::apps
