// Pair count — adjacent-word co-occurrence, the first stage of the PMI
// chain (docs/graphs.md).
//
// Map tokenizes each line and folds every adjacent pair "w1 w2" into the
// hash container, exactly the word-count shape but with bigram keys. Splits
// are cut at LINE boundaries, not word boundaries: a pair never spans a
// newline, so cutting between lines keeps the emitted multiset independent
// of both chunking (LineFormat already guarantees chunk edges sit on
// newlines) and the split fan-out inside a chunk.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/combining.hpp"
#include "core/application.hpp"

namespace supmr::apps {

class PairCountApp final : public core::Application {
 public:
  using Result = std::pair<std::string, std::uint64_t>;

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return results_.size(); }
  std::string canonical_output() const override;

  core::CombinerKind combiner_kind() const override {
    return core::CombinerKind::kSum;
  }
  core::ShardKind shard_kind() const override {
    return core::ShardKind::kSortedKeys;
  }
  Status use_container(core::ContainerMode mode) override {
    container_.select(mode);
    return Status::Ok();
  }
  core::CombineStats combine_stats() const override {
    return container_.stats();
  }

  // Final output: ("w1 w2", count) sorted by the pair key.
  const std::vector<Result>& results() const { return results_; }

 private:
  std::size_t num_mappers_ = 0;
  containers::SwitchedContainer<containers::SumCombiner<std::uint64_t>>
      container_;
  std::vector<std::span<const char>> splits_;
  std::vector<std::vector<Result>> partitions_;
  std::vector<Result> results_;
};

// Splits `text` into at most `max_splits` pieces, cutting only after '\n'.
// Exposed for tests.
std::vector<std::span<const char>> split_lines(std::span<const char> text,
                                               std::size_t max_splits);

// Invokes fn("w1 w2") for every adjacent word pair within each line of
// `text` (pairs never cross newlines). Exposed for tests.
void for_each_pair(std::span<const char> text,
                   const std::function<void(std::string_view)>& fn);

}  // namespace supmr::apps
