#include "apps/chains.hpp"

#include <utility>

#include "apps/doc_term_count.hpp"
#include "apps/inverted_index.hpp"
#include "apps/pair_count.hpp"
#include "apps/pmi.hpp"
#include "apps/scatter.hpp"
#include "apps/tera_sort.hpp"
#include "apps/tfidf.hpp"
#include "apps/word_count.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"

namespace supmr::apps {
namespace {

core::JobConfig stage_config(const core::ReplaySpec& spec) {
  core::JobConfig cfg;
  cfg.mode = spec.mode;
  cfg.merge_mode = spec.merge_mode;
  cfg.num_map_threads = spec.threads;
  cfg.num_reduce_threads = spec.threads;
  cfg.num_merge_partitions = spec.merge_partitions;
  cfg.io = spec.io;
  return cfg;
}

graph::StageOptions stage(const core::ReplaySpec& spec, std::string name,
                          std::shared_ptr<const ingest::RecordFormat> format) {
  graph::StageOptions opts;
  opts.name = std::move(name);
  opts.config = stage_config(spec);
  opts.format = std::move(format);
  opts.chunk_bytes = spec.chunk_bytes;
  opts.io = spec.io;
  return opts;
}

}  // namespace

StatusOr<graph::JobGraph> make_chain(const core::ReplaySpec& spec,
                                     const ChainInputs& inputs) {
  graph::JobGraph g;
  if (spec.app == "pmi") {
    if (inputs.device == nullptr)
      return Status::InvalidArgument("chains: pmi needs a corpus device");
    auto line = std::make_shared<ingest::LineFormat>();
    const std::size_t wc = g.add_stage(
        [] { return std::make_unique<WordCountApp>(); },
        stage(spec, "wordcount", line));
    const std::size_t pc = g.add_stage(
        [] { return std::make_unique<PairCountApp>(); },
        stage(spec, "paircount", line));
    const std::size_t join = g.add_stage(
        [] { return std::make_unique<PmiApp>(); }, stage(spec, "pmi", line));
    SUPMR_RETURN_IF_ERROR(g.set_source(
        wc, std::make_shared<ingest::SingleDeviceSource>(
                inputs.device, line, spec.chunk_bytes, spec.io)));
    SUPMR_RETURN_IF_ERROR(g.set_source(
        pc, std::make_shared<ingest::SingleDeviceSource>(
                inputs.device, line, spec.chunk_bytes, spec.io)));
    SUPMR_RETURN_IF_ERROR(g.add_edge(wc, join));
    SUPMR_RETURN_IF_ERROR(g.add_edge(pc, join));
    return g;
  }
  if (spec.app == "tfidf") {
    if (inputs.files.empty())
      return Status::InvalidArgument("chains: tfidf needs corpus files");
    auto line = std::make_shared<ingest::LineFormat>();
    const std::size_t index = g.add_stage(
        [] { return std::make_unique<InvertedIndexApp>(); },
        stage(spec, "index", line));
    const std::size_t dtc = g.add_stage(
        [] { return std::make_unique<DocTermCountApp>(); },
        stage(spec, "doctermcount", line));
    const std::size_t join = g.add_stage(
        [] { return std::make_unique<TfIdfApp>(); },
        stage(spec, "tfidf", line));
    SUPMR_RETURN_IF_ERROR(g.set_source(
        index, std::make_shared<ingest::MultiFileSource>(
                   inputs.files,
                   static_cast<std::size_t>(spec.files_per_chunk), spec.io)));
    SUPMR_RETURN_IF_ERROR(g.set_source(
        dtc, std::make_shared<ingest::MultiFileSource>(
                 inputs.files,
                 static_cast<std::size_t>(spec.files_per_chunk), spec.io)));
    SUPMR_RETURN_IF_ERROR(g.add_edge(index, join));
    SUPMR_RETURN_IF_ERROR(g.add_edge(dtc, join));
    return g;
  }
  if (spec.app == "msort") {
    if (inputs.device == nullptr)
      return Status::InvalidArgument("chains: msort needs a corpus device");
    auto crlf = std::make_shared<ingest::CrlfFormat>();
    ScatterOptions sopt;
    sopt.key_bytes = static_cast<std::uint32_t>(spec.key_bytes);
    sopt.record_bytes = static_cast<std::uint32_t>(spec.record_bytes);
    TeraSortOptions topt;
    topt.key_bytes = static_cast<std::uint32_t>(spec.key_bytes);
    topt.record_bytes = static_cast<std::uint32_t>(spec.record_bytes);
    topt.partitions = spec.app_partitions;
    const std::size_t scatter = g.add_stage(
        [sopt] { return std::make_unique<ScatterApp>(sopt); },
        stage(spec, "scatter", crlf));
    const std::size_t sort = g.add_stage(
        [topt] { return std::make_unique<TeraSortApp>(topt); },
        stage(spec, "terasort", crlf));
    SUPMR_RETURN_IF_ERROR(g.set_source(
        scatter, std::make_shared<ingest::SingleDeviceSource>(
                     inputs.device, crlf, spec.chunk_bytes, spec.io)));
    SUPMR_RETURN_IF_ERROR(g.add_edge(scatter, sort));
    return g;
  }
  return Status::InvalidArgument("chains: not a graph app: " + spec.app);
}

}  // namespace supmr::apps
