// Word tokenizer shared by the text applications (word count, grep,
// inverted index).
//
// A word is a maximal run of ASCII letters/digits, lowercased. Delimiter
// runs are skipped eight bytes at a time (common/scan.hpp SWAR prefilter),
// and classification/lowercasing are single table loads instead of
// locale-dispatching <cctype> calls — the tokenizer touches every input
// byte, so it sits squarely on the ingest bandwidth path the paper is
// about. Lowercasing happens into a small stack buffer so the hot loop
// performs no heap allocation; pathological words longer than kMaxWord are
// truncated (they still count, under their truncated spelling).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <string_view>

#include "common/scan.hpp"

namespace supmr::apps {

inline constexpr std::size_t kMaxWord = 255;

inline bool is_word_char(char c) { return scan::is_word_byte(c); }

// fn(std::string_view word) — the view points at a stack buffer, valid only
// during the call.
template <typename Fn>
void tokenize_words(std::span<const char> text, Fn&& fn) {
  char buf[kMaxWord + 1];
  std::size_t pos = 0;
  while (true) {
    const std::size_t start = scan::find_word_start(text, pos);
    if (start >= text.size()) return;
    const std::size_t end = scan::find_word_end(text, start);
    const std::size_t len = std::min(end - start, kMaxWord);
    for (std::size_t i = 0; i < len; ++i) {
      buf[i] = scan::to_lower_ascii(text[start + i]);
    }
    fn(std::string_view(buf, len));
    pos = end;
  }
}

}  // namespace supmr::apps
