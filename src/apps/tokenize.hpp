// Word tokenizer shared by the text applications (word count, grep,
// inverted index).
//
// A word is a maximal run of ASCII letters/digits, lowercased. Lowercasing
// happens into a small stack buffer so the hot loop performs no heap
// allocation; pathological words longer than kMaxWord are truncated (they
// still count, under their truncated spelling).
#pragma once

#include <cctype>
#include <cstddef>
#include <span>
#include <string_view>

namespace supmr::apps {

inline constexpr std::size_t kMaxWord = 255;

inline bool is_word_char(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0;
}

// fn(std::string_view word) — the view points at a stack buffer, valid only
// during the call.
template <typename Fn>
void tokenize_words(std::span<const char> text, Fn&& fn) {
  char buf[kMaxWord + 1];
  std::size_t len = 0;
  for (char c : text) {
    if (is_word_char(c)) {
      if (len < kMaxWord) {
        buf[len++] = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      }
    } else if (len > 0) {
      fn(std::string_view(buf, len));
      len = 0;
    }
  }
  if (len > 0) fn(std::string_view(buf, len));
}

}  // namespace supmr::apps
