// Dense matrix multiply — the COMPUTE-BOUND end of the application spectrum.
//
// C = A x B with A resident (the model/operator matrix) and B streamed from
// primary storage column-by-column: each fixed-width input record is one
// column of B (n doubles, binary), each map task computes the corresponding
// columns of C into the unlocked array container. Map cost is O(n^2) per n*8
// input bytes, so for modest n the job is map-bound — the regime where the
// ingest chunk pipeline hides ingest entirely (the paper's §VI.C.3
// observation inverted: "a job with a longer and more complicated map phase
// would achieve better speedup").
//
// Reduce computes the Frobenius norm of C (touching every output once);
// merge is a no-op (columns are produced in input order).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "containers/array_container.hpp"
#include "core/application.hpp"

namespace supmr::apps {

class MatrixMultiplyApp final : public core::Application {
 public:
  // `a` is row-major n x n; input records must be n*8-byte columns of B.
  MatrixMultiplyApp(std::vector<double> a, std::size_t n);

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return tasks_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return container_.size(); }

  // Column `j` of C (n doubles), valid after the map rounds.
  const double* column(std::uint64_t j) const {
    return reinterpret_cast<const double*>(container_.record(j).data());
  }
  std::uint64_t columns() const { return container_.size(); }
  double frobenius_norm() const { return frobenius_; }
  std::size_t n() const { return n_; }

  // Serializes a row-major matrix's COLUMNS as fixed-width records (the
  // device format this app ingests: record j = column j of `m`).
  static std::string columns_to_records(const std::vector<double>& m,
                                        std::size_t n);

 private:
  struct RoundTask {
    const char* src = nullptr;
    std::uint64_t first_slot = 0;
    std::uint64_t num_columns = 0;
  };

  std::vector<double> a_;
  std::size_t n_;
  std::size_t num_mappers_ = 0;
  containers::ArrayContainer container_;
  std::vector<RoundTask> tasks_;
  double frobenius_ = 0.0;
};

}  // namespace supmr::apps
