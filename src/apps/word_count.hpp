// Word count — the paper's ingest-bound benchmark application.
//
// Map tokenizes text into lowercase words and folds counts into the hash
// container (combine-on-insert keeps the intermediate set at vocabulary
// size, not input size). Reduce merges the per-thread stripes by partition;
// merge sorts the (word, count) pairs by word with the configured merge
// algorithm. The "more complicated map phase — checking a container before
// inserting a key" (§VI.B) is exactly the find_or_insert in emit, and is why
// word count overlaps more compute with ingest than sort does.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/combining.hpp"
#include "core/application.hpp"

namespace supmr::apps {

class WordCountApp final : public core::Application {
 public:
  using Result = std::pair<std::string, std::uint64_t>;

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return results_.size(); }
  std::string canonical_output() const override;

  core::CombinerKind combiner_kind() const override {
    return core::CombinerKind::kSum;
  }
  core::ShardKind shard_kind() const override {
    return core::ShardKind::kSortedKeys;
  }
  Status use_container(core::ContainerMode mode) override {
    container_.select(mode);
    return Status::Ok();
  }
  core::CombineStats combine_stats() const override {
    return container_.stats();
  }

  // Final output: (word, count) sorted by word.
  const std::vector<Result>& results() const { return results_; }

  // Total words mapped (across all rounds); conserved into counts.
  std::uint64_t words_mapped() const;

 private:
  std::size_t num_mappers_ = 0;
  containers::SwitchedContainer<containers::SumCombiner<std::uint64_t>>
      container_;
  std::vector<std::span<const char>> splits_;
  std::vector<std::uint64_t> words_per_thread_;
  std::vector<std::vector<Result>> partitions_;
  std::vector<Result> results_;
};

// Splits `text` into at most `max_splits` pieces on whitespace boundaries
// (never mid-word). Exposed for tests.
std::vector<std::span<const char>> split_text(std::span<const char> text,
                                              std::size_t max_splits);

// Tokenizes `text`, invoking fn(word) per lowercase word. Exposed for tests.
void for_each_word(std::span<const char> text,
                   const std::function<void(std::string_view)>& fn);

}  // namespace supmr::apps
