// TeraSort — the paper's merge-bound benchmark application.
//
// Records are fixed-width (100 bytes in the paper), "\r\n"-terminated, with
// a fixed-width binary-comparable key prefix. Map "parses" the chunk —
// copying records into the unlocked array container at claimed slots (the
// paper's §V.B: every thread writes its own key range with no
// synchronization; sort's map is cheap, which is why its ingest overlap gains
// are modest). Reduce checksums partitions (touching every key, as the
// paper's reduce does). Merge is where the runtimes differ:
//   * kPairwise    — iterative pairwise merging, log2(R) rounds (Fig. 1),
//   * kPWay        — run formation + single parallel p-way merge (Fig. 6), or
//   * kPartitioned — key-range sharded shuffle (docs/merge.md): with
//     options.partitions > 0 map copies records into a PartitionedContainer
//     (splitters sampled from the first chunk), so the merge phase is P
//     independent per-partition merges with no global round at all.
// All modes sort indices/pointers by key then materialize permuted records.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "containers/array_container.hpp"
#include "containers/partitioned.hpp"
#include "core/application.hpp"

namespace supmr::apps {

struct TeraSortOptions {
  std::uint32_t key_bytes = 10;
  std::uint32_t record_bytes = 100;  // includes the trailing "\r\n"
  bool validate_terminators = true;
  // > 0 enables the map-time partitioned shuffle with this many key-space
  // partitions (pair with MergeMode::kPartitioned; typically
  // JobConfig::merge_partitions()). 0 keeps the flat array container.
  std::size_t partitions = 0;
};

class TeraSortApp final : public core::Application {
 public:
  explicit TeraSortApp(TeraSortOptions options = {}) : options_(options) {}

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return tasks_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override {
    return partitioned() ? pcontainer_.total_records() : container_.size();
  }
  std::string canonical_output() const override;

  // canonical_output() normalizes equal-key ties by full record bytes, so
  // its global order is exactly full-record memcmp — the kFixedRecords
  // contract.
  core::ShardKind shard_kind() const override {
    return core::ShardKind::kFixedRecords;
  }

  // Sorted output (result_count() * record_bytes bytes), valid after merge.
  const std::vector<char>& sorted_data() const { return sorted_; }

  // Sum over all keys' first 8 bytes — computed by reduce; order-invariant,
  // so it must match between chunked and unchunked runs.
  std::uint64_t key_checksum() const { return checksum_; }

  std::uint64_t malformed_records() const {
    return malformed_.load(std::memory_order_relaxed);
  }

  const TeraSortOptions& options() const { return options_; }

  // Map-time partitioned container (options.partitions > 0), read-only view
  // for tests and the partition property suite.
  bool partitioned() const { return options_.partitions > 0; }
  const containers::PartitionedContainer& partitioned_container() const {
    return pcontainer_;
  }

 private:
  struct RoundTask {
    const char* src = nullptr;       // first record's bytes in the chunk
    std::uint64_t first_slot = 0;    // destination slot in the container
    std::uint64_t num_records = 0;
  };

  Status merge_partitioned(ThreadPool& pool, merge::MergeStats* stats);

  TeraSortOptions options_;
  std::size_t num_mappers_ = 0;
  containers::ArrayContainer container_;
  containers::PartitionedContainer pcontainer_;
  std::vector<RoundTask> tasks_;
  std::uint64_t checksum_ = 0;
  std::atomic<std::uint64_t> malformed_{0};
  std::vector<char> sorted_;
};

}  // namespace supmr::apps
