// K-means clustering — an ITERATIVE MapReduce workload.
//
// The paper's related work (HaLoop, Twister, CGL-MapReduce) motivates
// iterative jobs; SupMR's persistent-container change (§III.C) is exactly
// what Twister does for iteration. This app drives one MapReduce job per
// k-means iteration through the same runtime (including the ingest chunk
// pipeline — the points are re-ingested each iteration, so a slow device
// pays the ingest bottleneck every round, making the pipeline's benefit
// multiply with iteration count).
//
// Map: assign each point to its nearest centroid and fold (sum, count) into
// a dense per-cluster accumulator (FixedKvArray — cluster ids are a small
// dense key space). Reduce: fold stripes, producing new centroids. Merge:
// no-op. The driver run_kmeans() iterates to convergence.
//
// Input format: one point per line, `dim` space-separated ASCII doubles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "containers/fixed_kv_array.hpp"
#include "core/application.hpp"
#include "ingest/source.hpp"

namespace supmr::apps {

struct KMeansOptions {
  std::size_t clusters = 4;
  std::size_t dim = 2;
};

// Per-cluster accumulator: coordinate sums + point count.
struct ClusterAccum {
  std::vector<double> sum;
  std::uint64_t count = 0;
};

struct ClusterAccumCombiner {
  using value_type = ClusterAccum;
  static ClusterAccum identity() { return ClusterAccum{}; }
  static void combine(ClusterAccum& acc, const ClusterAccum& v);
  static void merge(ClusterAccum& acc, const ClusterAccum& v) {
    combine(acc, v);
  }
};

class KMeansApp final : public core::Application {
 public:
  KMeansApp(KMeansOptions options, std::vector<std::vector<double>> centroids);

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return new_centroids_.size(); }

  // New centroids, valid after reduce. Empty clusters keep their previous
  // centroid.
  const std::vector<std::vector<double>>& new_centroids() const {
    return new_centroids_;
  }
  std::uint64_t points_assigned() const;

  // Nearest-centroid index for `point` under the CURRENT centroids.
  std::size_t nearest(const double* point) const;

 private:
  KMeansOptions options_;
  std::vector<std::vector<double>> centroids_;
  std::size_t num_mappers_ = 0;
  containers::FixedKvArray<ClusterAccumCombiner> container_;
  std::vector<std::span<const char>> splits_;
  std::vector<std::uint64_t> assigned_per_thread_;
  std::vector<std::vector<double>> new_centroids_;
};

struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::size_t iterations = 0;
  double final_shift = 0.0;        // max centroid movement in the last iter
  std::uint64_t points = 0;
  double total_s = 0.0;
};

// Runs k-means to convergence (max centroid shift < epsilon) or max_iters.
// Each iteration is a full MapReduce job over `source` with `config`.
// `initial_centroids` must have options.clusters entries of options.dim.
StatusOr<KMeansResult> run_kmeans(
    const ingest::IngestSource& source, const core::JobConfig& config,
    const KMeansOptions& options,
    std::vector<std::vector<double>> initial_centroids,
    std::size_t max_iters = 50, double epsilon = 1e-6);

}  // namespace supmr::apps
