// Double-buffering primitive — the heart of the ingest chunk pipeline.
//
// Two slots alternate between a single producer (the ingest thread, filling
// the *next* chunk) and a single consumer (the map coordinator, draining the
// *current* chunk) — exactly Fig. 4 of the paper: mappers operate on c_i
// while c_{i+1} is read from disk. At most two buffers are ever resident,
// which bounds the pipeline's extra memory to one chunk.
//
// Ownership contract (see docs/concurrency.md):
//   * produce() is producer-only, consume() is consumer-only; one of each.
//   * close() may be called by EITHER side, any number of times. The
//     producer closes to signal end-of-stream (consumer drains the resident
//     slots, then consume() returns false); the consumer closes to cancel
//     (a producer blocked in produce() returns false and its value is
//     dropped). A pipeline that cancels MUST close() before joining the
//     producer thread, or the join deadlocks on a producer stuck in
//     produce()'s slot_free_ wait.
//   * Values left resident at destruction are destroyed with the buffer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>

namespace supmr {

template <typename T>
class DoubleBuffer {
 public:
  DoubleBuffer() = default;
  DoubleBuffer(const DoubleBuffer&) = delete;
  DoubleBuffer& operator=(const DoubleBuffer&) = delete;

  // Producer: blocks until a slot is free, then stores `value`.
  // Returns false if the buffer was closed.
  bool produce(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    slot_free_.wait(lock, [&] { return closed_ || count_ < 2; });
    if (closed_) return false;
    slots_[write_] = std::move(value);
    write_ ^= 1;
    ++count_;
    slot_ready_.notify_one();
    return true;
  }

  // Consumer: blocks until a slot is filled, moves it out.
  // Returns false once closed and drained.
  bool consume(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    slot_ready_.wait(lock, [&] { return closed_ || count_ > 0; });
    if (count_ == 0) return false;
    out = std::move(slots_[read_]);
    read_ ^= 1;
    --count_;
    slot_free_.notify_one();
    return true;
  }

  // Producer signals end-of-stream. Consumers drain remaining slots.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    slot_ready_.notify_all();
    slot_free_.notify_all();
  }

  std::size_t occupied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable slot_ready_;
  std::condition_variable slot_free_;
  T slots_[2] = {};
  int read_ = 0;
  int write_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace supmr
