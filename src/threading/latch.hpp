// Countdown latch and reusable barrier.
//
// The map engine launches a wave of mapper threads per round and must wait
// for the whole wave before starting the next round (the paper's "loop for
// each chunk"). A countdown latch is the natural primitive; the barrier is
// used by the pairwise merge rounds. We implement both on mutex +
// condition_variable — uncontended on the hot path since waits happen once
// per round, not per record.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace supmr {

class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count) : count_(count) {}

  CountdownLatch(const CountdownLatch&) = delete;
  CountdownLatch& operator=(const CountdownLatch&) = delete;

  // Decrements the count; wakes waiters when it reaches zero.
  //
  // Lost-wakeup audit: the decrement and the notify_all() must both happen
  // while mu_ is held — a "fast path" that decrements an atomic and notifies
  // without the lock can interleave between a wait()'s predicate check
  // (sees count_ > 0) and its sleep, and that waiter never wakes. Every
  // mutation path in this class stays under the mutex for that reason;
  // tests/stress/stress_pool_latch_test.cpp hammers this interleaving.
  void count_down(std::size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ = (n >= count_) ? 0 : count_ - n;
    if (count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  bool try_wait() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_;
};

// Cyclic barrier for a fixed party count; reusable across generations.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties), waiting_(0) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  // Blocks until `parties` threads have arrived. Returns true for exactly one
  // thread per generation (the "serial" thread, as in std::barrier's
  // completion step).
  bool arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
    return false;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const std::size_t parties_;
  std::size_t waiting_;
  std::uint64_t generation_ = 0;
};

}  // namespace supmr
