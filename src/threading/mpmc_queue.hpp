// Bounded blocking multi-producer/multi-consumer queue.
//
// Used as the thread pool's task channel. Mutex-based: pool tasks are
// coarse (a whole input split or merge run), so queue overhead is noise
// relative to task cost — correctness and simplicity win here (CP.2/CP.3:
// minimize shared writable state, guard what remains).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace supmr {

template <typename T>
class MpmcQueue {
 public:
  // capacity == 0 means unbounded.
  explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Blocks while full (bounded mode). Returns false if the queue was closed,
  // in which case `value` is dropped — items that were already queued before
  // the close are never lost and remain poppable (pop()/try_pop() drain
  // them). A producer blocked here when close() fires wakes and returns
  // false without pushing.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // After close(), pushes fail and pops drain the remaining items then
  // return nullopt. Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace supmr
