#include "threading/thread_pool.hpp"

#include <cassert>

#include "obs/macros.hpp"

namespace supmr {

ThreadPool::ThreadPool(std::size_t num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  queue_.close();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_;
  }
  if (!queue_.push(std::move(task))) {
    // The pool shut down between the increment and the enqueue, so the task
    // will never run and never decrement. Without this rollback, pending_
    // stays permanently non-zero and every later wait_all() hangs; the
    // notify covers a wait_all() that already observed the transient count.
    std::lock_guard<std::mutex> lock(pending_mu_);
    assert(pending_ > 0 && "ThreadPool pending_ underflow in submit rollback");
    if (--pending_ == 0) pending_cv_.notify_all();
    return false;
  }
  return true;
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::worker_loop() {
  SUPMR_TRACE_THREAD_NAME("pool.worker");
  while (auto task = queue_.pop()) {
    {
      SUPMR_TRACE_SCOPE("pool", "pool.task");
      (*task)();
    }
    // The decrement and the notify both happen under pending_mu_: a notify
    // outside the lock could fire between a wait_all()'s predicate check and
    // its sleep, losing the wakeup.
    std::lock_guard<std::mutex> lock(pending_mu_);
    assert(pending_ > 0 && "ThreadPool pending_ underflow: uncounted task");
    if (--pending_ == 0) pending_cv_.notify_all();
  }
}

bool ThreadPool::run_wave(
    const std::vector<std::function<void(std::size_t)>>& tasks) {
  SUPMR_TRACE_SCOPE_VAR(span, "pool", "pool.wave");
  SUPMR_TRACE_SET_ARG(span, "tasks", tasks.size());
  SUPMR_COUNTER_ADD("pool.waves", 1);
  SUPMR_COUNTER_ADD("pool.tasks", tasks.size());
  if (tasks.empty()) return true;
  // Per-wave completion: with several jobs leasing the same pool, waiting on
  // the global pending counter would make this wave block until every other
  // job's tasks drain too (and never return under continuous load).
  CountdownLatch latch(tasks.size());
  bool ok = true;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const bool submitted = submit([&tasks, &latch, i] {
      tasks[i](i);
      latch.count_down();
    });
    if (!submitted) {
      // The pool is shut down: this task will never run. Count it down
      // ourselves so the wait below cannot hang, and report the drop.
      latch.count_down();
      ok = false;
    }
  }
  latch.wait();
  return ok;
}

void ThreadPool::run_wave_or_throw(
    const std::vector<std::function<void(std::size_t)>>& tasks) {
  if (!run_wave(tasks))
    throw std::runtime_error(
        "ThreadPool::run_wave: wave dropped, pool is shut down");
}

void ThreadPool::run_wave_unpooled(
    const std::vector<std::function<void(std::size_t)>>& tasks) {
  SUPMR_TRACE_SCOPE_VAR(span, "pool", "pool.wave_unpooled");
  SUPMR_TRACE_SET_ARG(span, "tasks", tasks.size());
  SUPMR_COUNTER_ADD("pool.waves", 1);
  SUPMR_COUNTER_ADD("pool.tasks", tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    threads.emplace_back([&tasks, i] { tasks[i](i); });
  for (auto& t : threads) t.join();
}

bool parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& fn) {
  const std::size_t workers = pool.size();
  const std::size_t per = (n + workers - 1) / workers;
  std::vector<std::function<void(std::size_t)>> tasks;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * per;
    if (begin >= n) break;
    const std::size_t end = std::min(begin + per, n);
    tasks.push_back([&fn, begin, end](std::size_t idx) { fn(begin, end, idx); });
  }
  return pool.run_wave(tasks);
}

void parallel_for_or_throw(ThreadPool& pool, std::size_t n,
                           const std::function<void(std::size_t, std::size_t,
                                                    std::size_t)>& fn) {
  if (!parallel_for(pool, n, fn))
    throw std::runtime_error(
        "parallel_for: wave dropped, pool is shut down");
}

}  // namespace supmr
