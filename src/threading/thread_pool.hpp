// Fixed-size worker pool.
//
// The SupMR runtime restarts mapper "waves" once per ingest chunk. Creating
// and joining std::threads per round is exactly the thread overhead the paper
// measures for small chunk sizes — so the pool supports both modes:
//   * submit()/wait_all(): reuse pooled workers (the production path), and
//   * run_wave_unpooled(): spawn-and-join raw threads (faithful to the
//     paper's "create thread / destroy thread" pseudo-code, used by benches
//     that want to measure that overhead).
//
// One pool instance may be shared by many concurrent jobs (the JobManager
// leases slices of it), so run_wave() completion is tracked with a per-wave
// latch rather than the global pending counter: a wave returns when *its*
// tasks finish, not when the whole pool goes idle.
#pragma once

#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "threading/latch.hpp"
#include "threading/mpmc_queue.hpp"

namespace supmr {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (>=1). Workers are joined in the destructor.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task. Tasks must not throw (CP: tasks own their errors; a
  // throwing task aborts via std::terminate in the worker).
  //
  // Returns false — and drops the task — if the pool has been shut down. The
  // pending counter is rolled back on that path so a concurrent wait_all()
  // can never block on a task that will not run.
  bool submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. Note: with
  // multiple jobs sharing the pool this waits for *all* of them; per-wave
  // completion is what run_wave() gives you.
  void wait_all();

  // Closes the task queue, lets the workers drain every already-queued task,
  // and joins them. Idempotent; the destructor calls it. After shutdown(),
  // submit() returns false.
  void shutdown();

  // Runs `tasks` as one wave on pooled workers: submits all and waits on a
  // per-wave latch. `worker_index` (0-based within the wave) is passed to
  // each task.
  //
  // Returns false if any submit() failed (pool already shut down): the
  // remaining tasks did NOT run. Callers with a Status channel must
  // propagate; callers without one use run_wave_or_throw().
  [[nodiscard]] bool run_wave(
      const std::vector<std::function<void(std::size_t)>>& tasks);

  // run_wave() for call sites without an error channel (merge kernels that
  // return MergeStats, benches): a dropped wave there is an unrecoverable
  // lifecycle bug, so it throws std::runtime_error instead.
  void run_wave_or_throw(
      const std::vector<std::function<void(std::size_t)>>& tasks);

  // Spawn-and-join raw std::threads, one per task — the paper's per-round
  // thread lifecycle. Measurably slower for many small rounds.
  static void run_wave_unpooled(
      const std::vector<std::function<void(std::size_t)>>& tasks);

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;
};

// Statically partitions [0, n) across `pool.size()` workers and runs
// fn(begin, end, worker_index) for each non-empty range. Returns false if
// the wave was dropped because the pool is shut down (see run_wave).
[[nodiscard]] bool parallel_for(ThreadPool& pool, std::size_t n,
                                const std::function<void(std::size_t,
                                                         std::size_t,
                                                         std::size_t)>& fn);

// parallel_for() for call sites without an error channel; throws
// std::runtime_error if the pool is shut down.
void parallel_for_or_throw(ThreadPool& pool, std::size_t n,
                           const std::function<void(std::size_t, std::size_t,
                                                    std::size_t)>& fn);

}  // namespace supmr
