// Fixed-size worker pool.
//
// The SupMR runtime restarts mapper "waves" once per ingest chunk. Creating
// and joining std::threads per round is exactly the thread overhead the paper
// measures for small chunk sizes — so the pool supports both modes:
//   * submit()/wait_all(): reuse pooled workers (the production path), and
//   * run_wave(): spawn-and-join raw threads (faithful to the paper's
//     "create thread / destroy thread" pseudo-code, used by benches that
//     want to measure that overhead).
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "threading/latch.hpp"
#include "threading/mpmc_queue.hpp"

namespace supmr {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (>=1). Workers are joined in the destructor.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task. Tasks must not throw (CP: tasks own their errors; a
  // throwing task aborts via std::terminate in the worker).
  //
  // Returns false — and drops the task — if the pool has been shut down. The
  // pending counter is rolled back on that path so a concurrent wait_all()
  // can never block on a task that will not run.
  bool submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void wait_all();

  // Closes the task queue, lets the workers drain every already-queued task,
  // and joins them. Idempotent; the destructor calls it. After shutdown(),
  // submit() returns false.
  void shutdown();

  // Runs `tasks` as one wave on pooled workers: submits all and waits.
  // `worker_index` (0-based within the wave) is passed to each task.
  void run_wave(const std::vector<std::function<void(std::size_t)>>& tasks);

  // Spawn-and-join raw std::threads, one per task — the paper's per-round
  // thread lifecycle. Measurably slower for many small rounds.
  static void run_wave_unpooled(
      const std::vector<std::function<void(std::size_t)>>& tasks);

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;
};

// Statically partitions [0, n) across `pool.size()` workers and runs
// fn(begin, end, worker_index) for each non-empty range.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& fn);

}  // namespace supmr
