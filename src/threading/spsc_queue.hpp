// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The ingest chunk pipeline is exactly an SPSC relationship: one ingest
// thread produces filled chunks, the map coordinator consumes them. The ring
// uses acquire/release on head/tail indices (Lamport queue); capacity is
// rounded up to a power of two so wrap-around is a mask. Padding separates
// producer- and consumer-owned cache lines to avoid false sharing.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace supmr {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine = std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    assert(capacity > 0);
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when full.
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    T value = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace supmr
