// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The ingest chunk pipeline is exactly an SPSC relationship: one ingest
// thread produces filled chunks, the map coordinator consumes them. The ring
// uses acquire/release on head/tail indices (Lamport queue); capacity is
// rounded up to a power of two so wrap-around is a mask. Padding separates
// producer- and consumer-owned cache lines to avoid false sharing.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace supmr {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine = std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    assert(capacity > 0);
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when full.
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    T value = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  // Observer contract: exact from the producer or consumer thread; from any
  // other thread it is a clamped snapshot in [0, capacity()]. The head load
  // must precede the tail load: head only grows, so a stale head can only
  // over-estimate the count — loading tail first (as this code originally
  // did) lets a concurrent pop advance head past the captured tail, and the
  // unsigned subtraction underflows to ~SIZE_MAX.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    assert(tail >= head && "SpscQueue::size(): torn head/tail observation");
    const std::size_t n = tail - head;
    return n <= mask_ + 1 ? n : mask_ + 1;
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace supmr
