#include "ingest/adaptive.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.hpp"
#include "ingest/producer_guard.hpp"
#include "obs/macros.hpp"
#include "threading/double_buffer.hpp"

namespace supmr::ingest {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double ewma(double current, double sample, double alpha) {
  return current == 0.0 ? sample : (1.0 - alpha) * current + alpha * sample;
}
}  // namespace

RateMatchingController::RateMatchingController(Options options)
    : options_(options) {
  options_.min_bytes = std::max<std::uint64_t>(1, options_.min_bytes);
  options_.max_bytes = std::max(options_.max_bytes, options_.min_bytes);
}

void RateMatchingController::observe(const ChunkFeedback& feedback) {
  if (feedback.bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Duration-weighted smoothing: a measurement much shorter than the round
  // floor is dominated by burst credit and scheduling noise (e.g. a small
  // read served entirely from a throttled device's idle credit looks
  // infinitely fast), so it contributes proportionally less.
  const auto weighted_alpha = [&](double duration) {
    return options_.alpha * std::min(1.0, duration / options_.round_floor_s);
  };
  if (feedback.ingest_s > 0.0) {
    ingest_bw_ = ewma(ingest_bw_, double(feedback.bytes) / feedback.ingest_s,
                      weighted_alpha(feedback.ingest_s));
  }
  if (feedback.process_s > 0.0) {
    process_bw_ = ewma(process_bw_,
                       double(feedback.bytes) / feedback.process_s,
                       weighted_alpha(feedback.process_s));
  }
}

std::uint64_t RateMatchingController::next_chunk_bytes() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ingest_bw_ <= 0.0) return options_.initial_bytes;
  // A pipeline round lasts chunk / min(ingest_bw, process_bw) — whichever
  // side is slower paces it (the other overlaps underneath). Smaller chunks
  // start overlap earlier and shrink the unoverlapped lead-in/tail, but each
  // round pays a fixed thread-wave cost (§VI.C.1), so the round must last at
  // least round_floor_s:
  //
  //     chunk* = round_floor_s * min(ingest_bw, process_bw)
  //
  // i.e. the smallest chunk whose round still amortizes its overhead.
  double pacing_bw = ingest_bw_;
  if (process_bw_ > 0.0) pacing_bw = std::min(pacing_bw, process_bw_);
  const double bytes = pacing_bw * options_.round_floor_s;
  const std::uint64_t clamped = static_cast<std::uint64_t>(std::llround(
      std::clamp(bytes, double(options_.min_bytes),
                 double(options_.max_bytes))));
  return clamped;
}

double RateMatchingController::ingest_bw_estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ingest_bw_;
}

double RateMatchingController::process_bw_estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return process_bw_;
}

StatusOr<PipelineStats> AdaptivePipeline::run(
    const std::function<Status(IngestChunk&)>& process) {
  PipelineStats stats;
  const std::uint64_t size = device_.size();
  if (size == 0) return stats;

  DoubleBuffer<IngestChunk> buffer;
  std::atomic<bool> cancel{false};
  Status producer_status;
  std::mutex timings_mu;  // guards stats.chunks growth across threads
  const auto run_start = std::chrono::steady_clock::now();

  std::thread producer([&] {
    SUPMR_TRACE_THREAD_NAME("ingest.producer");
    std::uint64_t offset = 0;
    std::uint64_t index = 0;
    std::uint64_t want = std::max<std::uint64_t>(
        1, controller_.initial_chunk_bytes());
    while (offset < size && !cancel.load(std::memory_order_acquire)) {
      SUPMR_GAUGE_SET("ingest.adaptive.chunk_bytes", want);
      auto end = format_.adjust_split(device_, offset + want);
      if (!end.ok()) {
        producer_status = end.status();
        break;
      }
      if (*end <= offset) {
        producer_status =
            Status::Internal("adaptive plan did not advance");
        break;
      }
      IngestChunk chunk;
      chunk.index = index;
      chunk.offset = offset;
      chunk.data.resize(*end - offset);
      const auto t0 = std::chrono::steady_clock::now();
      // Chunk-level recovery: same retry/degrade discipline as
      // IngestPipeline::run_planned.
      fault::RetrySession session(recovery_.policy, index);
      std::uint32_t attempts = 1;
      Status read_status;
      while (true) {
        StatusOr<std::size_t> n = [&] {
          SUPMR_TRACE_SCOPE_VAR(span, "ingest", "ingest.read_chunk");
          SUPMR_TRACE_SET_ARG(span, "chunk", index);
          SUPMR_TRACE_SET_ARG2(span, "bytes", chunk.data.size());
          return device_.read_at(
              offset, std::span<char>(chunk.data.data(), chunk.data.size()));
        }();
        read_status = n.ok() && *n != chunk.data.size()
                          ? Status::IoError("short adaptive read")
                          : n.status();
        if (read_status.ok() || cancel.load(std::memory_order_acquire)) break;
        const std::optional<double> wait = session.next_backoff(read_status);
        if (!wait.has_value()) {
          read_status = session.annotate(read_status);
          break;
        }
        ++attempts;
        ++stats.chunk_retries;
        SUPMR_COUNTER_ADD("ingest.chunk_retries", 1);
        SUPMR_HIST_OBSERVE("ingest.backoff_wait_us", *wait * 1e6);
        SUPMR_TRACE_INSTANT_ARG("fault", "ingest.chunk_retry", "chunk",
                                index);
        fault::backoff_sleep(*wait, &cancel);
      }
      const double ingest_s = seconds_since(t0);
      SUPMR_HIST_OBSERVE("ingest.read_us", ingest_s * 1e6);
      {
        std::lock_guard<std::mutex> lock(timings_mu);
        stats.chunks.resize(
            std::max<std::size_t>(stats.chunks.size(), index + 1));
        stats.chunks[index].index = index;
        stats.chunks[index].bytes = chunk.data.size();
        stats.chunks[index].ingest_s = ingest_s;
        stats.chunks[index].attempts = attempts;
      }
      if (!read_status.ok()) {
        if (recovery_.degrade && fault::retryable(read_status) &&
            !cancel.load(std::memory_order_acquire)) {
          const std::uint64_t lost = chunk.data.size();
          {
            std::lock_guard<std::mutex> lock(timings_mu);
            stats.chunks[index].skipped = true;
          }
          ++stats.chunks_skipped;
          stats.bytes_skipped += lost;
          SUPMR_COUNTER_ADD("ingest.chunks_skipped", 1);
          SUPMR_COUNTER_ADD("ingest.bytes_skipped", lost);
          SUPMR_LOG_WARN("adaptive: skipping poisoned chunk %llu "
                         "(%llu bytes): %s",
                         static_cast<unsigned long long>(index),
                         static_cast<unsigned long long>(lost),
                         read_status.to_string().c_str());
          offset = *end;
          ++index;
          want = std::max<std::uint64_t>(1, controller_.next_chunk_bytes());
          continue;
        }
        producer_status = std::move(read_status);
        break;
      }
      controller_.observe(ChunkFeedback{index, chunk.data.size(), ingest_s,
                                        0.0});
      SUPMR_COUNTER_ADD("ingest.chunks", 1);
      SUPMR_COUNTER_ADD("ingest.bytes", chunk.data.size());
      SUPMR_LOG_DEBUG("adaptive: chunk %llu = %zu bytes (ingest %.4fs)",
                      static_cast<unsigned long long>(index),
                      chunk.data.size(), ingest_s);
      if (!buffer.produce(std::move(chunk))) break;
      offset = *end;
      ++index;
      want = std::max<std::uint64_t>(1, controller_.next_chunk_bytes());
    }
    buffer.close();
  });

  Status consumer_status;
  {
    // Same exit discipline as IngestPipeline::run_planned — cancel + close
    // must precede the join on every path (error or exception), or a
    // producer blocked in produce() deadlocks the join.
    internal::ProducerJoinGuard guard(buffer, cancel, producer);
    IngestChunk chunk;
    while (true) {
      const auto t_wait = std::chrono::steady_clock::now();
      bool drained;
      {
        SUPMR_TRACE_SCOPE("ingest", "ingest.wait");
        drained = !buffer.consume(chunk);
      }
      if (drained) break;
      const double waited = seconds_since(t_wait);
      SUPMR_HIST_OBSERVE("ingest.wait_us", waited * 1e6);
      const auto t_proc = std::chrono::steady_clock::now();
      Status st;
      {
        SUPMR_TRACE_SCOPE_VAR(span, "ingest", "ingest.process_chunk");
        SUPMR_TRACE_SET_ARG(span, "chunk", chunk.index);
        SUPMR_TRACE_SET_ARG2(span, "bytes", chunk.data.size());
        st = process(chunk);
      }
      const double processed = seconds_since(t_proc);
      SUPMR_HIST_OBSERVE("ingest.process_us", processed * 1e6);
      {
        std::lock_guard<std::mutex> lock(timings_mu);
        stats.chunks[chunk.index].wait_s = waited;
        stats.chunks[chunk.index].process_s = processed;
      }
      stats.consumer_wait_s += waited;
      stats.process_busy_s += processed;
      stats.total_bytes += chunk.data.size();
      controller_.observe(ChunkFeedback{chunk.index, chunk.data.size(), 0.0,
                                        processed});
      if (!st.ok()) {
        consumer_status = std::move(st);
        break;
      }
    }
  }
  stats.total_s = seconds_since(run_start);
  for (const auto& c : stats.chunks) stats.ingest_busy_s += c.ingest_s;

  if (!consumer_status.ok()) return consumer_status;
  if (!producer_status.ok()) return producer_status;
  return stats;
}

}  // namespace supmr::ingest
