// Ingest sources: where chunks come from.
//
// SingleDeviceSource implements inter-file chunking (paper §III.A.1): one
// big input split at record boundaries into ~chunk_bytes pieces — the
// TeraSort-style layout. MultiFileSource implements intra-file chunking:
// many small files coalesced k-per-chunk — the word-count-style layout. The
// last chunk may be smaller (paper's 30-files/4-per-chunk example yields
// 7x4 + 1x2).
#pragma once

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "ingest/chunk.hpp"
#include "ingest/record_format.hpp"
#include "storage/device.hpp"

namespace supmr::ingest {

class IngestSource {
 public:
  virtual ~IngestSource() = default;

  // Computes the chunk plan. Deterministic; may read the source to locate
  // record boundaries.
  virtual StatusOr<std::vector<ChunkExtent>> plan() const = 0;

  // Reads one planned chunk into `out` (reusing out.data's capacity).
  virtual Status read_chunk(const ChunkExtent& extent, IngestChunk& out) const = 0;

  virtual std::uint64_t total_bytes() const = 0;

  // Aggregate performance model of the backing device(s), for simulation.
  virtual storage::DeviceModel model() const = 0;
};

// Inter-file chunking over one device.
class SingleDeviceSource final : public IngestSource {
 public:
  // chunk_bytes == 0 means a single chunk spanning the whole device (the
  // original runtime's one-shot ingest). With IoMode::kMmap, read_chunk
  // lends borrowed views when the device supports them and silently falls
  // back to the copying path otherwise.
  SingleDeviceSource(std::shared_ptr<const storage::Device> device,
                     std::shared_ptr<const RecordFormat> format,
                     std::uint64_t chunk_bytes, IoMode io = IoMode::kRead);

  StatusOr<std::vector<ChunkExtent>> plan() const override;
  Status read_chunk(const ChunkExtent& extent, IngestChunk& out) const override;
  std::uint64_t total_bytes() const override { return device_->size(); }
  storage::DeviceModel model() const override { return device_->model(); }

  const storage::Device& device() const { return *device_; }
  const RecordFormat& format() const { return *format_; }
  std::uint64_t chunk_bytes() const { return chunk_bytes_; }
  IoMode io() const { return io_; }

 private:
  std::shared_ptr<const storage::Device> device_;
  std::shared_ptr<const RecordFormat> format_;
  std::uint64_t chunk_bytes_;
  IoMode io_;
};

// Intra-file chunking over many whole files.
class MultiFileSource final : public IngestSource {
 public:
  // files_per_chunk == 0 means all files in one chunk. IoMode::kMmap lends
  // a borrowed view only for single-file chunks — a coalesced chunk must be
  // contiguous in memory, which requires copying.
  MultiFileSource(std::vector<std::shared_ptr<const storage::Device>> files,
                  std::size_t files_per_chunk, IoMode io = IoMode::kRead);

  StatusOr<std::vector<ChunkExtent>> plan() const override;
  Status read_chunk(const ChunkExtent& extent, IngestChunk& out) const override;
  std::uint64_t total_bytes() const override { return total_bytes_; }
  storage::DeviceModel model() const override;

  std::size_t file_count() const { return files_.size(); }
  std::size_t files_per_chunk() const { return files_per_chunk_; }
  IoMode io() const { return io_; }

 private:
  std::vector<std::shared_ptr<const storage::Device>> files_;
  std::size_t files_per_chunk_;
  std::uint64_t total_bytes_;
  IoMode io_;
};

}  // namespace supmr::ingest
