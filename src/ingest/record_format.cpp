#include "ingest/record_format.hpp"

#include <algorithm>
#include <vector>

#include "common/scan.hpp"

namespace supmr::ingest {

namespace {

// Reads exactly `out.size()` bytes at `offset`, absorbing short reads:
// Device::read_at may legally return fewer bytes than asked mid-file
// (throttled and fault-injected devices cap the per-call transfer). The
// returned count is less than out.size() only at the end of the device, so
// callers can use `filled < want` as a true-EOF signal.
StatusOr<std::size_t> read_full(const storage::Device& device,
                                std::uint64_t offset, std::span<char> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t n, device.read_at(offset + filled, out.subspan(filled)));
    if (n == 0) break;  // end of device
    filled += n;
  }
  return filled;
}

}  // namespace

StatusOr<std::uint64_t> RecordFormat::adjust_split(
    const storage::Device& device, std::uint64_t desired) const {
  const std::uint64_t size = device.size();
  if (desired >= size) return size;

  // A split landing exactly on a record boundary is not "in the middle of a
  // key or value" and stays put.
  const std::string_view term = terminator();
  if (!term.empty() && desired >= term.size()) {
    char probe[8];
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t got,
        read_full(device, desired - term.size(),
                  std::span<char>(probe, term.size())));
    if (got == term.size() &&
        std::string_view(probe, term.size()) == term) {
      return desired;
    }
  }

  std::vector<char> window(kScanWindow);
  // Start the scan slightly before `desired` so a multi-byte terminator that
  // `desired` lands inside (e.g. between '\r' and '\n') is still found; the
  // same overlap is kept between successive windows so a terminator
  // straddling a window edge is always seen whole.
  const std::size_t overlap = term.empty() ? 0 : term.size() - 1;
  std::uint64_t base = desired - std::min<std::uint64_t>(overlap, desired);
  while (base < size) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(window.size(), size - base));
    // Fill the whole window before scanning. Advancing on a short read used
    // to break this loop: a device that capped reads below the overlap made
    // the scan give up mid-file and silently report "record runs to EOF".
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t filled,
        read_full(device, base, std::span<char>(window.data(), want)));
    auto end = find_record_end(std::span<const char>(window.data(), filled), 0);
    if (end.has_value()) return base + *end;
    if (filled < want) break;            // device ended early: true EOF
    if (base + filled >= size) break;    // scanned the last window
    if (filled <= overlap) break;        // degenerate tail, cannot advance
    base += filled - overlap;
  }
  return size;  // record runs to EOF
}

std::optional<std::size_t> LineFormat::find_record_end(
    std::span<const char> window, std::size_t from) const {
  const auto nl = scan::find_byte(window, from, '\n');
  if (!nl.has_value()) return std::nullopt;
  return *nl + 1;
}

std::optional<std::size_t> CrlfFormat::find_record_end(
    std::span<const char> window, std::size_t from) const {
  const auto cr = scan::find_crlf(window, from);
  if (!cr.has_value()) return std::nullopt;
  return *cr + 2;
}

std::optional<std::size_t> FixedFormat::find_record_end(
    std::span<const char> window, std::size_t from) const {
  const std::uint64_t end =
      (from / record_bytes_ + 1) * record_bytes_;
  if (end > window.size()) return std::nullopt;
  return static_cast<std::size_t>(end);
}

StatusOr<std::uint64_t> FixedFormat::adjust_split(
    const storage::Device& device, std::uint64_t desired) const {
  const std::uint64_t size = device.size();
  if (desired >= size) return size;
  const std::uint64_t aligned =
      (desired + record_bytes_ - 1) / record_bytes_ * record_bytes_;
  return std::min(aligned, size);
}

}  // namespace supmr::ingest
