#include "ingest/record_format.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace supmr::ingest {

StatusOr<std::uint64_t> RecordFormat::adjust_split(
    const storage::Device& device, std::uint64_t desired) const {
  const std::uint64_t size = device.size();
  if (desired >= size) return size;

  // A split landing exactly on a record boundary is not "in the middle of a
  // key or value" and stays put.
  const std::string_view term = terminator();
  if (!term.empty() && desired >= term.size()) {
    char probe[8];
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t got,
        device.read_at(desired - term.size(),
                       std::span<char>(probe, term.size())));
    if (got == term.size() &&
        std::string_view(probe, term.size()) == term) {
      return desired;
    }
  }

  std::vector<char> window(kScanWindow);
  // Start the scan slightly before `desired` so a multi-byte terminator that
  // `desired` lands inside (e.g. between '\r' and '\n') is still found.
  const std::uint64_t lookback =
      term.empty() ? 0 : std::min<std::uint64_t>(term.size() - 1, desired);
  std::uint64_t base = desired - lookback;
  // Scanning restarts at `base`; a terminator straddling two windows is
  // handled by re-reading from one byte before the window edge.
  std::size_t overlap = 0;
  while (base < size) {
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t n,
        device.read_at(base, std::span<char>(window.data(), window.size())));
    if (n == 0) break;
    auto end = find_record_end(std::span<const char>(window.data(), n), 0);
    if (end.has_value()) return base + *end;
    // Not found: keep the last byte for terminators spanning the boundary
    // (e.g. '\r' at the window edge with '\n' in the next window).
    overlap = 1;
    if (n <= overlap) break;
    base += n - overlap;
  }
  return size;  // record runs to EOF
}

std::optional<std::size_t> LineFormat::find_record_end(
    std::span<const char> window, std::size_t from) const {
  if (from >= window.size()) return std::nullopt;
  const void* p =
      std::memchr(window.data() + from, '\n', window.size() - from);
  if (p == nullptr) return std::nullopt;
  return static_cast<std::size_t>(static_cast<const char*>(p) -
                                  window.data()) + 1;
}

std::optional<std::size_t> CrlfFormat::find_record_end(
    std::span<const char> window, std::size_t from) const {
  std::size_t pos = from;
  while (pos + 1 < window.size()) {
    const void* p =
        std::memchr(window.data() + pos, '\r', window.size() - pos - 1);
    if (p == nullptr) return std::nullopt;
    pos = static_cast<std::size_t>(static_cast<const char*>(p) -
                                   window.data());
    if (window[pos + 1] == '\n') return pos + 2;
    ++pos;
  }
  return std::nullopt;
}

std::optional<std::size_t> FixedFormat::find_record_end(
    std::span<const char> window, std::size_t from) const {
  const std::uint64_t end =
      (from / record_bytes_ + 1) * record_bytes_;
  if (end > window.size()) return std::nullopt;
  return static_cast<std::size_t>(end);
}

StatusOr<std::uint64_t> FixedFormat::adjust_split(
    const storage::Device& device, std::uint64_t desired) const {
  const std::uint64_t size = device.size();
  if (desired >= size) return size;
  const std::uint64_t aligned =
      (desired + record_bytes_ - 1) / record_bytes_ * record_bytes_;
  return std::min(aligned, size);
}

}  // namespace supmr::ingest
