#include "ingest/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "ingest/producer_guard.hpp"
#include "obs/macros.hpp"
#include "threading/double_buffer.hpp"

namespace supmr::ingest {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

StatusOr<PipelineStats> IngestPipeline::run(
    const std::function<Status(IngestChunk&)>& process) {
  SUPMR_ASSIGN_OR_RETURN(std::vector<ChunkExtent> plan, source_.plan());
  return run_planned(plan, process);
}

StatusOr<PipelineStats> IngestPipeline::run_planned(
    const std::vector<ChunkExtent>& plan,
    const std::function<Status(IngestChunk&)>& process) {
  PipelineStats stats;
  stats.chunks.resize(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    stats.chunks[i].index = plan[i].index;
    stats.chunks[i].bytes = plan[i].length;
  }
  if (plan.empty()) return stats;

  DoubleBuffer<IngestChunk> buffer;
  std::atomic<bool> cancel{false};
  Status producer_status;  // written by producer before close(), read after join
  const auto run_start = std::chrono::steady_clock::now();

  std::thread producer([&] {
    SUPMR_TRACE_THREAD_NAME("ingest.producer");
    for (const ChunkExtent& extent : plan) {
      if (cancel.load(std::memory_order_acquire)) break;
      IngestChunk chunk;
      // Recycle a drained buffer so the copying path's resize() is
      // allocation-free once the pool is warm (the zero-copy path never
      // touches it and hands the capacity straight back).
      chunk.data = pool_->acquire();
      const auto t0 = std::chrono::steady_clock::now();
      // Chunk-level recovery: re-read a transiently failing chunk under the
      // retry policy instead of killing the pipeline on the first IoError.
      fault::RetrySession session(recovery_.policy, extent.index);
      Status st;
      while (true) {
        {
          SUPMR_TRACE_SCOPE_VAR(span, "ingest", "ingest.read_chunk");
          SUPMR_TRACE_SET_ARG(span, "chunk", extent.index);
          SUPMR_TRACE_SET_ARG2(span, "bytes", extent.length);
          st = source_.read_chunk(extent, chunk);
        }
        if (st.ok() || cancel.load(std::memory_order_acquire)) break;
        const std::optional<double> wait = session.next_backoff(st);
        if (!wait.has_value()) {
          st = session.annotate(st);
          break;
        }
        stats.chunks[extent.index].attempts += 1;
        ++stats.chunk_retries;
        SUPMR_COUNTER_ADD("ingest.chunk_retries", 1);
        SUPMR_HIST_OBSERVE("ingest.backoff_wait_us", *wait * 1e6);
        SUPMR_TRACE_INSTANT_ARG("fault", "ingest.chunk_retry", "chunk",
                                extent.index);
        fault::backoff_sleep(*wait, &cancel);
      }
      const double ingest_s = seconds_since(t0);
      stats.chunks[extent.index].ingest_s = ingest_s;
      SUPMR_HIST_OBSERVE("ingest.read_us", ingest_s * 1e6);
      if (!st.ok()) {
        if (recovery_.degrade && fault::retryable(st) &&
            !cancel.load(std::memory_order_acquire)) {
          // Degrade mode: account for the poisoned chunk and move on.
          stats.chunks[extent.index].skipped = true;
          ++stats.chunks_skipped;
          stats.bytes_skipped += extent.length;
          SUPMR_COUNTER_ADD("ingest.chunks_skipped", 1);
          SUPMR_COUNTER_ADD("ingest.bytes_skipped", extent.length);
          SUPMR_LOG_WARN("ingest: skipping poisoned chunk %llu (%llu bytes): "
                         "%s",
                         static_cast<unsigned long long>(extent.index),
                         static_cast<unsigned long long>(extent.length),
                         st.to_string().c_str());
          continue;
        }
        producer_status = std::move(st);
        break;
      }
      SUPMR_COUNTER_ADD("ingest.chunks", 1);
      SUPMR_COUNTER_ADD("ingest.bytes", chunk.size());
      if (chunk.borrowed()) {
        SUPMR_COUNTER_ADD("ingest.borrowed_chunks", 1);
        pool_->release(std::move(chunk.data));  // unused capacity goes back
        chunk.data = {};
      }
      SUPMR_LOG_DEBUG("ingest: chunk %llu ready (%zu bytes)",
                      static_cast<unsigned long long>(chunk.index),
                      chunk.size());
      if (!buffer.produce(std::move(chunk))) break;  // consumer cancelled
    }
    buffer.close();
  });

  Status consumer_status;
  {
    // Cancels, closes, and joins on every consumer exit — including an
    // exception escaping process(), which previously left the producer
    // blocked in produce() and terminated on the joinable thread.
    internal::ProducerJoinGuard guard(buffer, cancel, producer);
    IngestChunk chunk;
    while (true) {
      const auto t_wait = std::chrono::steady_clock::now();
      bool drained;
      {
        SUPMR_TRACE_SCOPE("ingest", "ingest.wait");
        drained = !buffer.consume(chunk);
      }
      if (drained) break;  // closed and drained
      const double waited = seconds_since(t_wait);
      stats.chunks[chunk.index].wait_s = waited;
      stats.consumer_wait_s += waited;
      SUPMR_HIST_OBSERVE("ingest.wait_us", waited * 1e6);

      const auto t_proc = std::chrono::steady_clock::now();
      Status st;
      {
        SUPMR_TRACE_SCOPE_VAR(span, "ingest", "ingest.process_chunk");
        SUPMR_TRACE_SET_ARG(span, "chunk", chunk.index);
        SUPMR_TRACE_SET_ARG2(span, "bytes", chunk.size());
        st = process(chunk);
      }
      const double processed = seconds_since(t_proc);
      stats.chunks[chunk.index].process_s = processed;
      stats.process_busy_s += processed;
      stats.total_bytes += chunk.size();
      SUPMR_HIST_OBSERVE("ingest.process_us", processed * 1e6);
      if (!chunk.borrowed()) pool_->release(std::move(chunk.data));
      chunk.data = {};

      if (!st.ok()) {
        consumer_status = std::move(st);
        break;  // guard cancels + closes before the join, so no deadlock
      }
    }
  }
  stats.total_s = seconds_since(run_start);
  for (const auto& c : stats.chunks) stats.ingest_busy_s += c.ingest_s;

  if (!consumer_status.ok()) return consumer_status;
  if (!producer_status.ok()) return producer_status;
  return stats;
}

}  // namespace supmr::ingest
