// Ingest chunk data structures (paper §III.A).
//
// A ChunkExtent describes where a chunk's bytes live (planning output); an
// IngestChunk carries the bytes once read — either OWNED (a vector filled by
// Device::read_at, the copying path) or BORROWED (a span lent by a
// view-capable device, the zero-copy mmap path; valid for the device's
// lifetime). Intra-file chunks additionally carry per-file spans so
// applications that are file-oriented (e.g. inverted index) can recover file
// identities inside a coalesced chunk.
//
// ChunkBufferPool recycles owned buffers between pipeline rounds so the
// copying path's steady-state allocation rate drops to zero: the producer
// acquires a buffer before each read, the consumer releases it after the map
// round, and the double-buffer depth bounds how many are ever in flight.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/enum_names.hpp"

namespace supmr::ingest {

// How a source moves bytes from the device into chunks (--io).
enum class IoMode {
  kRead,  // positional reads into owned (pooled) chunk buffers
  kMmap,  // borrowed zero-copy views from a view-capable device; sources
          // fall back to kRead per chunk when the device cannot lend views
          // (throttled/fault-injected/retrying stacks — you cannot retry a
          // page fault)
};

// Shared name table (common/enum_names.hpp): the CLI's --io flag, the
// replay/serve spec parsers, and metric labels all go through this.
inline constexpr EnumName<IoMode> kIoModeNames[] = {
    {IoMode::kRead, "read"},
    {IoMode::kMmap, "mmap"},
};

inline std::string_view io_mode_name(IoMode mode) {
  return enum_to_name(kIoModeNames, mode);
}

// A contiguous region of one source file placed inside a chunk.
struct FileSpan {
  std::size_t file_index = 0;      // index into the source's file list
  std::uint64_t file_offset = 0;   // where the region starts in the file
                                   // (non-zero when hybrid chunking splits
                                   // a large file across chunks)
  std::uint64_t offset_in_chunk = 0;
  std::uint64_t length = 0;
};

struct ChunkExtent {
  std::uint64_t index = 0;   // position in the ingest stream
  std::uint64_t offset = 0;  // device offset (inter-file chunking)
  std::uint64_t length = 0;  // total bytes
  std::vector<FileSpan> files;  // non-empty only for intra-file chunks
};

struct IngestChunk {
  std::uint64_t index = 0;
  std::uint64_t offset = 0;
  std::vector<char> data;  // owned storage; meaningful only when !borrowed
  std::vector<FileSpan> files;

  // Switches the chunk to a borrowed device view (zero-copy path). The
  // owned buffer is kept untouched so its capacity can still be recycled.
  void set_view(std::span<const char> view) {
    view_ = view;
    borrowed_ = true;
  }

  // Switches back to owned storage (callers then fill `data`). A
  // default-constructed chunk starts owned.
  void set_owned() {
    view_ = {};
    borrowed_ = false;
  }

  // The chunk's bytes regardless of storage mode. Well-defined for 0-byte
  // chunks in both modes (an empty span).
  std::span<const char> bytes() const {
    return borrowed_ ? view_
                     : std::span<const char>(data.data(), data.size());
  }
  std::size_t size() const { return bytes().size(); }
  bool empty() const { return bytes().empty(); }
  bool borrowed() const { return borrowed_; }

 private:
  std::span<const char> view_;  // non-owning (mmap path); empty when owned
  bool borrowed_ = false;
};

// Thread-safe freelist of chunk buffers (one producer, one consumer in the
// pipeline; any number of callers is safe). acquire() hands back a recycled
// vector — cleared but with its capacity intact, so the subsequent
// resize(extent.length) is allocation-free once the pool is warm — or a
// fresh one when the pool is empty. Releasing a 0-capacity buffer is a
// no-op (nothing to recycle), keeping 0-byte chunks well-defined.
class ChunkBufferPool {
 public:
  // A single pipeline needs ingest depth + 1 retained buffers (the double
  // buffer holds one, the producer fills one, the consumer drains one);
  // kBuffersPerPipeline rounds that up with one slack slot. When N jobs
  // share one pool (JobManager), size the cap from the lease:
  // N * kBuffersPerPipeline — a cap sized for one pipeline would thrash,
  // with concurrent pipelines stealing each other's warm buffers and
  // re-allocating every round.
  static constexpr std::size_t kBuffersPerPipeline = 4;

  explicit ChunkBufferPool(std::size_t max_buffers = kBuffersPerPipeline)
      : max_buffers_(max_buffers) {}

  std::vector<char> acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      ++misses_;  // caller allocates fresh; steady state should not miss
      return {};
    }
    std::vector<char> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    ++reuses_;
    return buf;
  }

  void release(std::vector<char>&& buf) {
    if (buf.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() >= max_buffers_) return;  // let it deallocate
    free_.push_back(std::move(buf));
  }

  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }
  std::uint64_t reuses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
  }
  // acquire() calls that found the freelist empty (the caller allocated).
  // The first rounds of each pipeline miss while the pool warms; a non-zero
  // *delta* across steady-state runs means the cap is undersized for the
  // number of concurrent pipelines.
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  std::size_t max_buffers() const { return max_buffers_; }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<char>> free_;
  std::size_t max_buffers_;
  std::uint64_t reuses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace supmr::ingest
