// Ingest chunk data structures (paper §III.A).
//
// A ChunkExtent describes where a chunk's bytes live (planning output); an
// IngestChunk owns the bytes once read. Intra-file chunks additionally carry
// per-file spans so applications that are file-oriented (e.g. inverted
// index) can recover file identities inside a coalesced chunk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace supmr::ingest {

// A contiguous region of one source file placed inside a chunk.
struct FileSpan {
  std::size_t file_index = 0;      // index into the source's file list
  std::uint64_t file_offset = 0;   // where the region starts in the file
                                   // (non-zero when hybrid chunking splits
                                   // a large file across chunks)
  std::uint64_t offset_in_chunk = 0;
  std::uint64_t length = 0;
};

struct ChunkExtent {
  std::uint64_t index = 0;   // position in the ingest stream
  std::uint64_t offset = 0;  // device offset (inter-file chunking)
  std::uint64_t length = 0;  // total bytes
  std::vector<FileSpan> files;  // non-empty only for intra-file chunks
};

struct IngestChunk {
  std::uint64_t index = 0;
  std::uint64_t offset = 0;
  std::vector<char> data;
  std::vector<FileSpan> files;

  std::span<const char> bytes() const {
    return std::span<const char>(data.data(), data.size());
  }
  bool empty() const { return data.empty(); }
};

}  // namespace supmr::ingest
