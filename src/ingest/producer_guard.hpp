// Scope guard for the ingest pipelines' producer thread.
//
// Both pipelines run one producer thread against a DoubleBuffer while the
// consumer loop runs on the caller's thread. Every exit from the consumer
// scope — clean drain, processing error, or an exception thrown by the
// user's process callback — must (1) set the cancel flag, (2) close() the
// buffer so a producer blocked inside produce() wakes up and exits, and
// (3) join the thread, in that order. Skipping (2) deadlocks the join;
// skipping (3) on the exception path destroys a joinable std::thread, which
// is std::terminate. Centralizing the sequence in a guard makes it
// impossible for a new exit path to forget a step.
#pragma once

#include <atomic>
#include <thread>

#include "ingest/chunk.hpp"
#include "threading/double_buffer.hpp"

namespace supmr::ingest::internal {

class ProducerJoinGuard {
 public:
  ProducerJoinGuard(DoubleBuffer<IngestChunk>& buffer,
                    std::atomic<bool>& cancel, std::thread& producer)
      : buffer_(buffer), cancel_(cancel), producer_(producer) {}

  ProducerJoinGuard(const ProducerJoinGuard&) = delete;
  ProducerJoinGuard& operator=(const ProducerJoinGuard&) = delete;

  ~ProducerJoinGuard() {
    cancel_.store(true, std::memory_order_release);
    buffer_.close();  // idempotent; releases a producer blocked in produce()
    if (producer_.joinable()) producer_.join();
  }

 private:
  DoubleBuffer<IngestChunk>& buffer_;
  std::atomic<bool>& cancel_;
  std::thread& producer_;
};

}  // namespace supmr::ingest::internal
