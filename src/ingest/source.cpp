#include "ingest/source.hpp"

#include <algorithm>
#include <cassert>

namespace supmr::ingest {

SingleDeviceSource::SingleDeviceSource(
    std::shared_ptr<const storage::Device> device,
    std::shared_ptr<const RecordFormat> format, std::uint64_t chunk_bytes,
    IoMode io)
    : device_(std::move(device)),
      format_(std::move(format)),
      chunk_bytes_(chunk_bytes),
      io_(io) {
  assert(device_ && format_);
}

StatusOr<std::vector<ChunkExtent>> SingleDeviceSource::plan() const {
  std::vector<ChunkExtent> extents;
  const std::uint64_t size = device_->size();
  if (size == 0) return extents;

  const std::uint64_t step = chunk_bytes_ == 0 ? size : chunk_bytes_;
  std::uint64_t offset = 0;
  std::uint64_t index = 0;
  while (offset < size) {
    SUPMR_ASSIGN_OR_RETURN(std::uint64_t end,
                           format_->adjust_split(*device_, offset + step));
    // adjust_split moves forward only; a pathological record larger than the
    // chunk still yields a strictly growing plan.
    if (end <= offset) {
      return Status::Internal("chunk plan did not advance at offset " +
                              std::to_string(offset));
    }
    extents.push_back(ChunkExtent{index++, offset, end - offset, {}});
    offset = end;
  }
  return extents;
}

Status SingleDeviceSource::read_chunk(const ChunkExtent& extent,
                                      IngestChunk& out) const {
  out.index = extent.index;
  out.offset = extent.offset;
  out.files.clear();
  // Zero-copy path: borrow the extent straight out of the device's mapping.
  // Wrapper devices (throttled/fault/retrying) do not lend views, so a
  // fault-injected stack automatically lands on the copying path below —
  // a failed read can be retried, a page fault cannot.
  if (io_ == IoMode::kMmap && device_->supports_views()) {
    const auto view = device_->view_at(extent.offset, extent.length);
    if (view.size() == extent.length) {
      out.set_view(view);
      return Status::Ok();
    }
  }
  out.set_owned();
  out.data.resize(extent.length);
  SUPMR_ASSIGN_OR_RETURN(
      std::size_t n,
      device_->read_at(extent.offset,
                       std::span<char>(out.data.data(), out.data.size())));
  if (n != extent.length) {
    return Status::IoError("short chunk read: wanted " +
                           std::to_string(extent.length) + " got " +
                           std::to_string(n));
  }
  return Status::Ok();
}

MultiFileSource::MultiFileSource(
    std::vector<std::shared_ptr<const storage::Device>> files,
    std::size_t files_per_chunk, IoMode io)
    : files_(std::move(files)), files_per_chunk_(files_per_chunk), io_(io) {
  total_bytes_ = 0;
  for (const auto& f : files_) total_bytes_ += f->size();
}

StatusOr<std::vector<ChunkExtent>> MultiFileSource::plan() const {
  std::vector<ChunkExtent> extents;
  if (files_.empty()) return extents;
  const std::size_t per =
      files_per_chunk_ == 0 ? files_.size() : files_per_chunk_;
  std::uint64_t index = 0;
  for (std::size_t first = 0; first < files_.size(); first += per) {
    const std::size_t last = std::min(first + per, files_.size());
    ChunkExtent extent;
    extent.index = index++;
    extent.offset = 0;
    std::uint64_t pos = 0;
    for (std::size_t f = first; f < last; ++f) {
      extent.files.push_back(FileSpan{f, 0, pos, files_[f]->size()});
      pos += files_[f]->size();
    }
    extent.length = pos;
    extents.push_back(std::move(extent));
  }
  return extents;
}

Status MultiFileSource::read_chunk(const ChunkExtent& extent,
                                   IngestChunk& out) const {
  out.index = extent.index;
  out.offset = extent.offset;
  out.files = extent.files;
  // A single-file chunk can be borrowed whole; coalesced chunks must be
  // contiguous in RAM (paper §III.A.1), which forces the copying path.
  if (io_ == IoMode::kMmap && extent.files.size() == 1) {
    const auto& span = extent.files.front();
    const auto& file = files_[span.file_index];
    if (file->supports_views()) {
      const auto view = file->view_at(span.file_offset, span.length);
      if (view.size() == span.length) {
        out.set_view(view);
        return Status::Ok();
      }
    }
  }
  out.set_owned();
  out.data.resize(extent.length);
  for (const auto& span : extent.files) {
    const auto& file = files_[span.file_index];
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t n,
        file->read_at(span.file_offset,
                      std::span<char>(out.data.data() + span.offset_in_chunk,
                                      span.length)));
    if (n != span.length) {
      return Status::IoError("short file read in chunk " +
                             std::to_string(extent.index));
    }
  }
  return Status::Ok();
}

storage::DeviceModel MultiFileSource::model() const {
  // Files live on one logical primary store; use the first file's model
  // (generators put all files on the same device class).
  if (files_.empty()) return storage::DeviceModel{};
  return files_.front()->model();
}

}  // namespace supmr::ingest
