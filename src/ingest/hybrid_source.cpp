#include "ingest/hybrid_source.hpp"

#include <cassert>

namespace supmr::ingest {

HybridFileSource::HybridFileSource(
    std::vector<std::shared_ptr<const storage::Device>> files,
    std::shared_ptr<const RecordFormat> format,
    std::uint64_t target_chunk_bytes)
    : files_(std::move(files)),
      format_(std::move(format)),
      target_(target_chunk_bytes) {
  assert(format_);
  total_bytes_ = 0;
  for (const auto& f : files_) total_bytes_ += f->size();
}

StatusOr<std::vector<ChunkExtent>> HybridFileSource::plan() const {
  std::vector<ChunkExtent> extents;
  const std::uint64_t target = target_ == 0 ? total_bytes_ : target_;

  ChunkExtent current;
  std::uint64_t fill = 0;
  auto flush = [&] {
    if (current.files.empty()) return;
    current.index = extents.size();
    current.offset = 0;
    current.length = fill;
    extents.push_back(std::move(current));
    current = ChunkExtent{};
    fill = 0;
  };

  for (std::size_t f = 0; f < files_.size(); ++f) {
    const std::uint64_t fsize = files_[f]->size();
    std::uint64_t off = 0;
    while (off < fsize) {
      if (fill >= target) flush();
      const std::uint64_t budget = target - fill;
      std::uint64_t piece_end;
      if (fsize - off <= budget) {
        // The rest of the file fits: coalesce it (intra-file behaviour).
        piece_end = fsize;
      } else {
        // The file overflows the chunk: split at a record boundary
        // (inter-file behaviour). adjust_split may overshoot the budget by
        // up to one record so records are never torn.
        SUPMR_ASSIGN_OR_RETURN(piece_end,
                               format_->adjust_split(*files_[f], off + budget));
        if (piece_end <= off) piece_end = fsize;  // no boundary: take rest
      }
      current.files.push_back(
          FileSpan{f, off, fill, piece_end - off});
      fill += piece_end - off;
      off = piece_end;
    }
  }
  flush();
  return extents;
}

Status HybridFileSource::read_chunk(const ChunkExtent& extent,
                                    IngestChunk& out) const {
  out.index = extent.index;
  out.offset = extent.offset;
  out.files = extent.files;
  out.set_owned();  // hybrid chunks interleave files: always copied
  out.data.resize(extent.length);
  for (const auto& span : extent.files) {
    const auto& file = files_[span.file_index];
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t n,
        file->read_at(span.file_offset,
                      std::span<char>(out.data.data() + span.offset_in_chunk,
                                      span.length)));
    if (n != span.length) {
      return Status::IoError("short hybrid read in chunk " +
                             std::to_string(extent.index));
    }
  }
  return Status::Ok();
}

storage::DeviceModel HybridFileSource::model() const {
  if (files_.empty()) return storage::DeviceModel{};
  return files_.front()->model();
}

}  // namespace supmr::ingest
