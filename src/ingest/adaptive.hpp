// Adaptive ingest chunk sizing — the feedback loop the paper leaves as
// future work (§III.A.2, §VIII: "design components that factor in the
// expected performance and the workload characteristics (i.e. a feedback
// loop)" for "determining the optimal chunk size").
//
// The pipeline is balanced when ingesting the next chunk takes about as long
// as mapping the current one: smaller chunks waste cycles on thread churn,
// larger chunks serialize the tail. RateMatchingController tracks EWMA
// estimates of the ingest bandwidth and the map (process) bandwidth from
// per-chunk feedback and sizes the next chunk as
//
//     next = ingest_bw * max(predicted_process_time, round_floor)
//
// clamped to [min, max]. On an ingest-bound job this shrinks chunks toward
// the overhead floor (finer interleaving costs nothing when mappers are
// starved anyway); on a map-bound job it grows chunks until ingest stays
// just ahead of the mappers.
//
// AdaptivePipeline is the double-buffered pipeline with incremental
// planning: the producer asks the controller for each next chunk size and
// adjusts the split to a record boundary on the fly, so no full plan is
// needed up front.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/status.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/record_format.hpp"
#include "storage/device.hpp"

namespace supmr::ingest {

struct ChunkFeedback {
  std::uint64_t chunk_index = 0;
  std::uint64_t bytes = 0;
  double ingest_s = 0.0;   // producer-side read time (0 if unknown yet)
  double process_s = 0.0;  // consumer-side map time (0 if unknown yet)
};

// Thread-safety contract: observe() is called from both pipeline threads;
// next_chunk_bytes() from the producer. Implementations synchronize
// internally.
class ChunkSizeController {
 public:
  virtual ~ChunkSizeController() = default;
  virtual std::uint64_t initial_chunk_bytes() const = 0;
  virtual void observe(const ChunkFeedback& feedback) = 0;
  virtual std::uint64_t next_chunk_bytes() = 0;
};

// Degenerate controller: a constant chunk size (for A/B comparisons).
class FixedChunkController final : public ChunkSizeController {
 public:
  explicit FixedChunkController(std::uint64_t bytes) : bytes_(bytes) {}
  std::uint64_t initial_chunk_bytes() const override { return bytes_; }
  void observe(const ChunkFeedback&) override {}
  std::uint64_t next_chunk_bytes() override { return bytes_; }

 private:
  std::uint64_t bytes_;
};

class RateMatchingController final : public ChunkSizeController {
 public:
  struct Options {
    std::uint64_t initial_bytes = 16 << 20;
    std::uint64_t min_bytes = 1 << 20;
    std::uint64_t max_bytes = 4ULL << 30;
    // A round should last at least this long so per-round thread costs stay
    // amortized (the paper's small-chunk overhead, §VI.C.1).
    double round_floor_s = 0.010;
    // EWMA smoothing factor for the bandwidth estimates, in (0, 1].
    double alpha = 0.4;
  };

  RateMatchingController() : RateMatchingController(Options{}) {}
  explicit RateMatchingController(Options options);

  std::uint64_t initial_chunk_bytes() const override {
    return options_.initial_bytes;
  }
  void observe(const ChunkFeedback& feedback) override;
  std::uint64_t next_chunk_bytes() override;

  // Current estimates (for tests/telemetry); 0 until first observation.
  double ingest_bw_estimate() const;
  double process_bw_estimate() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  double ingest_bw_ = 0.0;   // bytes/s
  double process_bw_ = 0.0;  // bytes/s
};

// Double-buffered pipeline with controller-driven incremental planning over
// one device. Produces the same PipelineStats as IngestPipeline, and honors
// the same chunk-level Recovery (retry with backoff; degrade-mode skip).
class AdaptivePipeline {
 public:
  AdaptivePipeline(const storage::Device& device, const RecordFormat& format,
                   ChunkSizeController& controller,
                   fault::Recovery recovery = {})
      : device_(device),
        format_(format),
        controller_(controller),
        recovery_(recovery) {}

  StatusOr<PipelineStats> run(
      const std::function<Status(IngestChunk&)>& process);

 private:
  const storage::Device& device_;
  const RecordFormat& format_;
  ChunkSizeController& controller_;
  fault::Recovery recovery_;
};

}  // namespace supmr::ingest
