// The ingest chunk pipeline (paper §III.B, Fig. 4).
//
// One producer (ingest) thread reads chunk c_{i+1} from the source while the
// consumer — the caller's thread, which runs the map waves — processes c_i.
// A DoubleBuffer bounds residency to two chunks, which is the paper's
// double-buffering scheme: the pipeline never gets more than one chunk ahead.
//
// The run is the paper's n+1 rounds: the first chunk is ingested with no
// compute overlapped (the consumer just waits), the middle rounds overlap
// ingest with compute, and the last round computes with no ingest running.
//
// Error handling: an ingest error closes the buffer and surfaces after the
// already-buffered chunks drain; a processing error cancels the producer.
//
// Fault tolerance (fault/retry_policy.hpp): under a Recovery config the
// producer re-reads a transiently failing chunk with bounded seeded
// backoff instead of wedging the double buffer; in degrade mode a chunk
// whose retries exhaust is skipped and accounted (chunks_skipped /
// bytes_skipped) rather than failing the job.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.hpp"
#include "fault/retry_policy.hpp"
#include "ingest/chunk.hpp"
#include "ingest/source.hpp"

namespace supmr::ingest {

struct ChunkTiming {
  std::uint64_t index = 0;
  std::uint64_t bytes = 0;
  double ingest_s = 0.0;   // producer: time reading this chunk
  double wait_s = 0.0;     // consumer: time blocked waiting for this chunk
  double process_s = 0.0;  // consumer: time inside the process callback
  std::uint32_t attempts = 1;  // read attempts (1 = first try succeeded)
  bool skipped = false;        // degrade mode dropped this chunk
};

struct PipelineStats {
  double total_s = 0.0;          // wall time of the whole pipeline
  double ingest_busy_s = 0.0;    // producer time spent reading
  double process_busy_s = 0.0;   // consumer time spent processing
  double consumer_wait_s = 0.0;  // consumer time starved for chunks;
                                 // the non-overlapped ingest time
  std::uint64_t total_bytes = 0;
  std::uint64_t chunk_retries = 0;   // re-read attempts beyond each first
  std::uint64_t chunks_skipped = 0;  // degrade mode: poisoned chunks dropped
  std::uint64_t bytes_skipped = 0;   // input bytes lost to skipped chunks
  std::vector<ChunkTiming> chunks;

  bool degraded() const { return chunks_skipped > 0; }
};

class IngestPipeline {
 public:
  // `shared_buffers` (optional) recycles chunk buffers through a pool owned
  // by the caller — the JobManager hands every pipeline one process-wide
  // pool sized from the leases so concurrent jobs share warm buffers
  // instead of each allocating their own. When null the pipeline owns a
  // private pool sized for a single pipeline.
  explicit IngestPipeline(const IngestSource& source,
                          fault::Recovery recovery = {},
                          ChunkBufferPool* shared_buffers = nullptr)
      : source_(source),
        recovery_(recovery),
        pool_(shared_buffers != nullptr ? shared_buffers : &owned_pool_) {}

  // Runs the full pipeline. `process` is invoked on the caller's thread for
  // each chunk, in stream order. Returns pipeline stats on success, or the
  // first error from planning, ingest, or processing.
  StatusOr<PipelineStats> run(
      const std::function<Status(IngestChunk&)>& process);

  // Runs with a precomputed plan (lets the runtime plan once and report
  // chunk counts before execution).
  StatusOr<PipelineStats> run_planned(
      const std::vector<ChunkExtent>& plan,
      const std::function<Status(IngestChunk&)>& process);

  // Owned-buffer recycling across rounds (see ChunkBufferPool): exposed so
  // tests and benchmarks can assert steady-state reuse. Resolves to the
  // shared pool when one was attached.
  const ChunkBufferPool& buffer_pool() const { return *pool_; }

 private:
  const IngestSource& source_;
  fault::Recovery recovery_;
  ChunkBufferPool owned_pool_;
  ChunkBufferPool* pool_;
};

}  // namespace supmr::ingest
