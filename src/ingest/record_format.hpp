// Record formats and chunk-boundary adjustment.
//
// Inter-file chunking must not split a record across chunks (paper §III.A.1):
// the runtime seeks to the user-defined chunk size and advances the split
// point to the end of the record in progress. Formats know how to find a
// record terminator:
//   * LineFormat — '\n'-terminated records (word count text corpora),
//   * CrlfFormat — "\r\n"-terminated records (TeraSort input, per the paper),
//   * FixedFormat — fixed-width binary records (boundary is arithmetic).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "common/status.hpp"
#include "storage/device.hpp"

namespace supmr::ingest {

class RecordFormat {
 public:
  virtual ~RecordFormat() = default;

  // Finds the end (exclusive: one past the terminator) of the record that is
  // in progress at `from` within `window`. Returns nullopt if the terminator
  // is beyond the window.
  virtual std::optional<std::size_t> find_record_end(
      std::span<const char> window, std::size_t from) const = 0;

  // The terminator byte sequence for delimiter-based formats (used to detect
  // that a desired split already sits on a record boundary). Fixed-width
  // formats return empty and override adjust_split instead.
  virtual std::string_view terminator() const = 0;

  // Adjusts a desired split offset forward to the nearest record boundary at
  // or after it, reading `device` as needed (paper §III.A.1: "checks to see
  // if it is in the middle of a key or value, and then continually increases
  // the split point until reaching the end of the value"). A desired offset
  // already on a boundary is returned unchanged; `desired` >= device size
  // clamps to the device size. A record with no terminator before EOF ends
  // the chunk at EOF.
  virtual StatusOr<std::uint64_t> adjust_split(const storage::Device& device,
                                               std::uint64_t desired) const;

 protected:
  // Window size for forward scanning; generous relative to any record.
  static constexpr std::size_t kScanWindow = 64 * 1024;
};

// Records terminated by a single '\n'.
class LineFormat final : public RecordFormat {
 public:
  std::optional<std::size_t> find_record_end(std::span<const char> window,
                                             std::size_t from) const override;
  std::string_view terminator() const override { return "\n"; }
};

// Records terminated by "\r\n" (the paper's TeraSort input format).
class CrlfFormat final : public RecordFormat {
 public:
  std::optional<std::size_t> find_record_end(std::span<const char> window,
                                             std::size_t from) const override;
  std::string_view terminator() const override { return "\r\n"; }
};

// Fixed-width records of `record_bytes`; boundary adjustment is arithmetic
// (round up to a whole record), no device reads needed.
class FixedFormat final : public RecordFormat {
 public:
  explicit FixedFormat(std::uint64_t record_bytes)
      : record_bytes_(record_bytes) {}

  std::optional<std::size_t> find_record_end(std::span<const char> window,
                                             std::size_t from) const override;
  std::string_view terminator() const override { return {}; }
  StatusOr<std::uint64_t> adjust_split(const storage::Device& device,
                                       std::uint64_t desired) const override;

  std::uint64_t record_bytes() const { return record_bytes_; }

 private:
  std::uint64_t record_bytes_;
};

}  // namespace supmr::ingest
