// Hybrid inter/intra-file chunking.
//
// The paper supports two chunking strategies and notes (§III.A.1) that "a
// hybrid inter/intra-file chunking approach could allow the runtime to tune
// the system ... but is not implemented in our initial prototype". This is
// that approach: given a mixed bag of files and a target chunk size,
//   * small files are COALESCED until the target is reached (intra-file),
//   * large files are SPLIT at record boundaries (inter-file),
// so every ingest chunk is close to the target regardless of the input's
// file-size distribution. File identity is preserved through FileSpans, so
// file-aware applications (inverted index) work on hybrid chunks too.
//
// Packing policy: files are taken in order; a file that fits in the
// remaining budget joins the current chunk; a file larger than the target is
// split into target-sized record-aligned pieces, each its own chunk (the
// head piece may share a chunk with preceding small files). Chunks never
// contain pieces of two different large files AND trailing small files out
// of order — input order is preserved exactly, which keeps planning
// deterministic and streams sequentially.
#pragma once

#include <memory>
#include <vector>

#include "ingest/source.hpp"

namespace supmr::ingest {

class HybridFileSource final : public IngestSource {
 public:
  // target_chunk_bytes == 0 -> everything in one chunk.
  HybridFileSource(std::vector<std::shared_ptr<const storage::Device>> files,
                   std::shared_ptr<const RecordFormat> format,
                   std::uint64_t target_chunk_bytes);

  StatusOr<std::vector<ChunkExtent>> plan() const override;
  Status read_chunk(const ChunkExtent& extent, IngestChunk& out) const override;
  std::uint64_t total_bytes() const override { return total_bytes_; }
  storage::DeviceModel model() const override;

  std::uint64_t target_chunk_bytes() const { return target_; }

 private:
  std::vector<std::shared_ptr<const storage::Device>> files_;
  std::shared_ptr<const RecordFormat> format_;
  std::uint64_t target_;
  std::uint64_t total_bytes_;
};

}  // namespace supmr::ingest
