#include "ref/ref_graph.hpp"

#include <memory>
#include <utility>

#include "ingest/source.hpp"
#include "ref/ref_job.hpp"
#include "storage/mem_device.hpp"

namespace supmr::ref {

StatusOr<GraphRefResult> run_graph(const graph::JobGraph& graph) {
  SUPMR_ASSIGN_OR_RETURN(std::vector<std::size_t> order, graph.topo_order());

  GraphRefResult result;
  std::vector<std::string> payloads(graph.num_stages());
  for (std::size_t idx : order) {
    const graph::JobGraph::Stage& stage = graph.stage(idx);
    std::unique_ptr<core::Application> app = stage.make_app();
    if (app == nullptr)
      return Status::Internal("ref graph: app factory returned null");

    RefResult ref;
    if (stage.source != nullptr) {
      SUPMR_ASSIGN_OR_RETURN(ref, run_ref(*app, *stage.source));
    } else {
      std::string input;
      for (std::size_t up : stage.inputs) input += payloads[up];
      auto dev = std::make_shared<storage::MemDevice>(
          std::move(input), "ref-graph-edge");
      // chunk_bytes = 0: the oracle sees each interior input as one round.
      ingest::SingleDeviceSource source(dev, stage.options.format, 0);
      SUPMR_ASSIGN_OR_RETURN(ref, run_ref(*app, source));
    }
    payloads[idx] = app->canonical_output();
    result.stage_names.push_back(stage.options.name.empty()
                                     ? "#" + std::to_string(idx)
                                     : stage.options.name);
    if (stage.outputs.empty()) {
      result.canonical = std::move(payloads[idx]);
      result.result_count = ref.result_count;
      payloads[idx].clear();
    }
  }
  return result;
}

}  // namespace supmr::ref
