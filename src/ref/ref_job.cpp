#include "ref/ref_job.hpp"

#include "core/job_config.hpp"
#include "ingest/chunk.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::ref {

StatusOr<RefResult> run_ref(core::Application& app,
                            const ingest::IngestSource& source) {
  app.init(1);
  SUPMR_ASSIGN_OR_RETURN(auto extents, source.plan());

  RefResult result;
  ingest::IngestChunk chunk;
  for (const auto& extent : extents) {
    SUPMR_RETURN_IF_ERROR(source.read_chunk(extent, chunk));
    SUPMR_RETURN_IF_ERROR(app.prepare_round(chunk));
    // One mapper: a round's tasks run strictly in task order on thread 0
    // (the Application contract allows rounds larger than the mapper count
    // as successive waves; sequentially each wave is one task).
    const std::size_t tasks = app.round_tasks();
    for (std::size_t t = 0; t < tasks; ++t) app.map_task(t, 0);
    ++result.chunks;
  }

  ThreadPool pool(1);
  SUPMR_RETURN_IF_ERROR(app.reduce(pool, 1));
  SUPMR_RETURN_IF_ERROR(app.merge(
      pool, core::MergePlan{core::MergeMode::kPairwise, 1}, nullptr));
  result.canonical = app.canonical_output();
  result.result_count = app.result_count();
  return result;
}

}  // namespace supmr::ref
