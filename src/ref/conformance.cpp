#include "ref/conformance.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "apps/chains.hpp"
#include "apps/doc_term_count.hpp"
#include "apps/external_word_count.hpp"
#include "apps/grep.hpp"
#include "apps/histogram.hpp"
#include "apps/inverted_index.hpp"
#include "apps/pair_count.hpp"
#include "apps/tera_sort.hpp"
#include "apps/word_count.hpp"
#include "cluster/cluster_job.hpp"
#include "fault/fault_plan.hpp"
#include "fault/retrying_device.hpp"
#include "graph/job_graph.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "ref/ref_graph.hpp"
#include "ref/ref_job.hpp"
#include "runtime/job_manager.hpp"
#include "storage/fault_device.hpp"
#include "storage/mem_device.hpp"
#include "wload/numeric.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::ref {
namespace {

std::vector<std::string> split_patterns(const std::string& csv) {
  std::vector<std::string> patterns;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    patterns.push_back(csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return patterns;
}

// The SUT app for the cell; `for_ref` builds the oracle twin instead. The
// twin is deliberately the boring variant: no map-time partitioning for
// sort, and the in-memory (non-spilling) container for xwordcount — the
// reference is "no-pipeline, no-spill" by definition.
StatusOr<std::unique_ptr<core::Application>> make_app(
    const core::ReplaySpec& spec, bool for_ref) {
  if (spec.app == "wordcount" || (for_ref && spec.app == "xwordcount")) {
    return std::unique_ptr<core::Application>(new apps::WordCountApp());
  }
  if (spec.app == "xwordcount") {
    containers::SpillingHashContainer::Options opt;
    opt.memory_budget_bytes =
        spec.memory_budget > 0 ? spec.memory_budget : 32 * 1024;
    return std::unique_ptr<core::Application>(
        new apps::ExternalWordCountApp(opt));
  }
  if (spec.app == "sort") {
    apps::TeraSortOptions opt;
    opt.key_bytes = static_cast<std::uint32_t>(spec.key_bytes);
    opt.record_bytes = static_cast<std::uint32_t>(spec.record_bytes);
    opt.partitions = for_ref ? 0 : spec.app_partitions;
    return std::unique_ptr<core::Application>(new apps::TeraSortApp(opt));
  }
  if (spec.app == "grep") {
    return std::unique_ptr<core::Application>(
        new apps::GrepApp(split_patterns(spec.grep_patterns)));
  }
  if (spec.app == "histogram") {
    apps::HistogramOptions opt;
    opt.lo = spec.hist_lo;
    opt.hi = spec.hist_hi;
    opt.bins = spec.hist_bins;
    return std::unique_ptr<core::Application>(new apps::HistogramApp(opt));
  }
  if (spec.app == "index") {
    return std::unique_ptr<core::Application>(new apps::InvertedIndexApp());
  }
  if (spec.app == "paircount") {
    return std::unique_ptr<core::Application>(new apps::PairCountApp());
  }
  if (spec.app == "doctermcount") {
    return std::unique_ptr<core::Application>(new apps::DocTermCountApp());
  }
  return Status::InvalidArgument("conformance: unknown app " + spec.app);
}

// Apps that require intra-file chunking (MultiFileSource): file identity
// must survive chunk coalescing.
bool needs_multi_text(const core::ReplaySpec& spec) {
  return spec.app == "index" || spec.app == "doctermcount";
}

std::shared_ptr<const ingest::RecordFormat> make_format(
    const core::ReplaySpec& spec) {
  if (spec.app == "sort") return std::make_shared<ingest::CrlfFormat>();
  return std::make_shared<ingest::LineFormat>();
}

std::string printable(std::string_view bytes) {
  std::string out;
  for (char c : bytes) {
    if (std::isprint(static_cast<unsigned char>(c))) {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

}  // namespace

StatusOr<std::string> make_corpus(const core::ReplaySpec& spec) {
  const core::CorpusSpec& c = spec.corpus;
  if (c.kind == "text") {
    wload::TextCorpusConfig cfg;
    cfg.total_bytes = c.bytes;
    cfg.seed = c.seed;
    return wload::generate_text(cfg);
  }
  if (c.kind == "terasort") {
    wload::TeraGenConfig cfg;
    cfg.key_bytes = static_cast<std::uint32_t>(spec.key_bytes);
    cfg.record_bytes = static_cast<std::uint32_t>(spec.record_bytes);
    cfg.num_records = cfg.record_bytes ? c.bytes / cfg.record_bytes : 0;
    cfg.seed = c.seed;
    return wload::teragen_to_string(cfg);
  }
  if (c.kind == "numeric") {
    wload::NumericConfig cfg;
    cfg.num_values = c.bytes / 4;
    cfg.lo = spec.hist_lo;
    cfg.hi = spec.hist_hi > spec.hist_lo ? spec.hist_hi - 1 : spec.hist_lo;
    cfg.seed = c.seed;
    return wload::generate_numeric(cfg);
  }
  return Status::InvalidArgument("conformance: unknown corpus kind " + c.kind);
}

std::string diff_summary(const std::string& sut, const std::string& ref) {
  if (sut == ref) return "identical";
  const std::size_t n = std::min(sut.size(), ref.size());
  std::size_t i = 0;
  while (i < n && sut[i] == ref[i]) ++i;
  const std::size_t from = i >= 16 ? i - 16 : 0;
  const std::size_t len = 32;
  std::string out = "outputs differ at byte " + std::to_string(i) + " (sut " +
                    std::to_string(sut.size()) + " bytes, ref " +
                    std::to_string(ref.size()) + " bytes); sut[" +
                    std::to_string(from) + "..]=\"" +
                    printable(std::string_view(sut).substr(from, len)) +
                    "\" ref[" + std::to_string(from) + "..]=\"" +
                    printable(std::string_view(ref).substr(from, len)) + "\"";
  return out;
}

namespace {

// How run_cell_impl executes the SUT job: inline (run_cell) or through a
// JobManager (run_cell_managed). The oracle side never goes through this.
using RunSut = std::function<StatusOr<core::JobResult>(
    core::Application&, const ingest::IngestSource&, const core::JobConfig&)>;

// Graph (chained-app) cells: build the spec's JobGraph twice from the same
// corpus devices — once for the executor (each stage funneled through
// `run_sut`, so managed cells lease every stage), once for the sequential
// oracle — and byte-compare the sink outputs.
StatusOr<ConformanceOutcome> run_graph_cell(const core::ReplaySpec& spec,
                                            const std::string* corpus_override,
                                            const RunSut& run_sut) {
  if (!spec.fault_plan.empty() || spec.degrade) {
    return Status::InvalidArgument(
        "conformance: graph cells do not take fault plans (stage handoff "
        "devices are not faultable)");
  }
  if (spec.mode == core::ExecMode::kAdaptive) {
    return Status::InvalidArgument(
        "conformance: graph stages run without an adaptive controller");
  }
  if (spec.container != core::ContainerMode::kDefault) {
    return Status::InvalidArgument(
        "conformance: graph cells run each stage's default container");
  }

  apps::ChainInputs inputs;
  if (spec.app == "tfidf") {
    if (spec.corpus.kind != "multi-text") {
      return Status::InvalidArgument(
          "conformance: tfidf cells need corpus kind multi-text");
    }
    if (corpus_override != nullptr) {
      return Status::InvalidArgument(
          "conformance: corpus overrides need a single-device graph app");
    }
    wload::TextCorpusConfig tcfg;
    tcfg.seed = spec.corpus.seed;
    const std::uint64_t per_file = std::max<std::uint64_t>(
        1, spec.corpus.bytes /
               std::max<std::uint64_t>(1, spec.corpus.num_files));
    inputs.files = wload::generate_text_files(
        tcfg, static_cast<std::size_t>(spec.corpus.num_files), per_file);
  } else {
    std::string data;
    if (corpus_override != nullptr) {
      data = *corpus_override;
    } else {
      SUPMR_ASSIGN_OR_RETURN(data, make_corpus(spec));
    }
    inputs.device = std::make_shared<storage::MemDevice>(
        std::move(data), "conformance-input");
  }

  SUPMR_ASSIGN_OR_RETURN(graph::JobGraph sut_graph,
                         apps::make_chain(spec, inputs));
  // The oracle twin: the same chain, but the boring sort variant (no
  // map-time partitioning) — the graph analog of make_app(for_ref).
  core::ReplaySpec ref_spec = spec;
  ref_spec.app_partitions = 0;
  SUPMR_ASSIGN_OR_RETURN(graph::JobGraph oracle_graph,
                         apps::make_chain(ref_spec, inputs));

  graph::GraphOptions gopts;
  gopts.handoff = spec.graph_handoff;
  gopts.memory_budget = spec.graph_budget;
  SUPMR_ASSIGN_OR_RETURN(
      graph::GraphResult sut,
      graph::run_graph(sut_graph, gopts,
                       [&](std::size_t, core::Application& app,
                           const ingest::IngestSource& source,
                           const core::JobConfig& cfg) {
                         return run_sut(app, source, cfg);
                       }));
  SUPMR_ASSIGN_OR_RETURN(GraphRefResult oracle, ref::run_graph(oracle_graph));

  ConformanceOutcome outcome;
  if (!sut.stages.empty()) outcome.job = sut.stages.back().job;
  outcome.graph_stages = sut.stages.size();
  outcome.graph_handoff_bytes = sut.handoff_bytes;
  outcome.graph_spill_bytes = sut.spill_bytes;
  outcome.graph_spill_files = sut.spill_files;
  outcome.sut_canonical = std::move(sut.final_output);
  outcome.ref_canonical = std::move(oracle.canonical);
  outcome.match = outcome.sut_canonical == outcome.ref_canonical;
  outcome.diff = outcome.match ? "identical"
                               : diff_summary(outcome.sut_canonical,
                                              outcome.ref_canonical);
  return outcome;
}

// Cluster cells: run the spec through the sharded-shuffle runtime
// (src/cluster/) and byte-compare the reassembled global output against the
// sequential oracle over the FULL corpus — the strongest form of the
// scale-out claim: N nodes, a real shuffle, identical bytes. The cluster
// owns its node runtimes, so `run_sut` does not apply here (run_cell_managed
// rejects cluster specs up front).
StatusOr<ConformanceOutcome> run_cluster_cell(
    const core::ReplaySpec& spec, const std::string* corpus_override) {
  if (!spec.fault_plan.empty() || spec.degrade) {
    return Status::InvalidArgument(
        "conformance: cluster cells do not take fault plans (node slices are "
        "private in-memory devices)");
  }
  if (needs_multi_text(spec) || spec.corpus.kind == "multi-text") {
    return Status::InvalidArgument(
        "conformance: cluster cells need a single-device app");
  }

  core::JobConfig cfg;
  cfg.mode = spec.mode;
  cfg.merge_mode = spec.merge_mode;
  cfg.num_map_threads = spec.threads;
  cfg.num_reduce_threads = spec.threads;
  cfg.num_merge_partitions = spec.merge_partitions;
  cfg.io = spec.io;
  cfg.container = spec.container;
  cfg.num_nodes = static_cast<std::size_t>(spec.cluster_nodes);
  cfg.node_link_bps = static_cast<double>(spec.cluster_link_bps);
  cfg.uplink_bps = static_cast<double>(spec.cluster_uplink_bps);
  cfg.node_disk_bps = static_cast<double>(spec.cluster_disk_bps);
  cfg.node_memory_budget = static_cast<std::size_t>(spec.cluster_budget);

  std::string data;
  if (corpus_override != nullptr) {
    data = *corpus_override;
  } else {
    SUPMR_ASSIGN_OR_RETURN(data, make_corpus(spec));
  }

  cluster::ClusterJob job;
  job.input = std::move(data);
  job.format = make_format(spec);
  job.make_app = [&spec]() -> std::unique_ptr<core::Application> {
    auto app = make_app(spec, /*for_ref=*/false);
    return app.ok() ? std::move(app).value() : nullptr;
  };
  job.config = cfg;
  job.chunk_bytes = spec.chunk_bytes;
  if (spec.app == "sort") job.record_bytes = spec.record_bytes;
  if (cfg.node_memory_budget > 0) {
    job.spill_dir = "/tmp/supmr_cluster_" + std::to_string(::getpid());
    ::mkdir(job.spill_dir.c_str(), 0777);  // best effort; the sorter reports
  }

  SUPMR_ASSIGN_OR_RETURN(cluster::ClusterResult sut, cluster::run_cluster(job));

  SUPMR_ASSIGN_OR_RETURN(auto ref_app, make_app(spec, /*for_ref=*/true));
  auto ref_dev =
      std::make_shared<storage::MemDevice>(job.input, "conformance-ref");
  ingest::SingleDeviceSource ref_source(ref_dev, make_format(spec), 0);
  SUPMR_ASSIGN_OR_RETURN(RefResult ref, run_ref(*ref_app, ref_source));

  ConformanceOutcome outcome;
  if (!sut.nodes.empty()) outcome.job = sut.nodes.front().job;
  outcome.cluster_nodes = sut.nodes.size();
  outcome.cluster_shuffle_bytes = sut.shuffle_bytes;
  outcome.cluster_local_bytes = sut.local_bytes;
  outcome.cluster_map_output_bytes = sut.map_output_bytes;
  outcome.cluster_recv_min_bytes = ~std::uint64_t{0};
  for (const cluster::NodeStats& node : sut.nodes) {
    outcome.cluster_spill_runs += node.spill_runs;
    const std::uint64_t owned = node.recv_bytes + node.local_bytes;
    outcome.cluster_recv_max_bytes =
        std::max(outcome.cluster_recv_max_bytes, owned);
    outcome.cluster_recv_min_bytes =
        std::min(outcome.cluster_recv_min_bytes, owned);
  }
  outcome.sut_canonical = std::move(sut.output);
  outcome.ref_canonical = std::move(ref.canonical);
  outcome.match = outcome.sut_canonical == outcome.ref_canonical;
  outcome.diff = outcome.match ? "identical"
                               : diff_summary(outcome.sut_canonical,
                                              outcome.ref_canonical);
  return outcome;
}

StatusOr<ConformanceOutcome> run_cell_impl(const core::ReplaySpec& spec,
                                           const std::string* corpus_override,
                                           const RunSut& run_sut) {
  if (spec.is_graph()) return run_graph_cell(spec, corpus_override, run_sut);
  if (spec.is_cluster()) return run_cluster_cell(spec, corpus_override);
  const bool multi = spec.corpus.kind == "multi-text";
  if (needs_multi_text(spec) && !multi) {
    return Status::InvalidArgument("conformance: " + spec.app +
                                   " cells need corpus kind multi-text");
  }
  if (multi && (!needs_multi_text(spec) || corpus_override != nullptr)) {
    return Status::InvalidArgument(
        "conformance: multi-text corpus only supports multi-file apps "
        "(index, doctermcount) without a corpus override");
  }
  if (multi && spec.mode == core::ExecMode::kAdaptive) {
    return Status::InvalidArgument(
        "conformance: adaptive mode needs a single-device source");
  }
  if (spec.degrade &&
      (multi || spec.mode != core::ExecMode::kIngestMR)) {
    return Status::InvalidArgument(
        "conformance: degrade cells run in supmr mode on a single device "
        "(the surviving-range oracle needs the planned chunk extents)");
  }

  std::optional<fault::FaultPlan> plan;
  if (!spec.fault_plan.empty()) {
    SUPMR_ASSIGN_OR_RETURN(plan, fault::FaultPlan::parse(spec.fault_plan));
  }

  core::JobConfig cfg;
  cfg.mode = spec.mode;
  cfg.merge_mode = spec.merge_mode;
  cfg.num_map_threads = spec.threads;
  cfg.num_reduce_threads = spec.threads;
  cfg.num_merge_partitions = spec.merge_partitions;
  cfg.recovery.policy.max_attempts =
      static_cast<std::uint32_t>(spec.retry_attempts);
  // Keep retried cells fast: the lattice runs hundreds of cells, and real
  // backoff curves are the fault suite's concern, not conformance's.
  cfg.recovery.policy.backoff_base_s = 1e-4;
  cfg.recovery.policy.backoff_max_s = 1e-3;
  cfg.recovery.degrade = spec.degrade;
  cfg.io = spec.io;
  cfg.container = spec.container;

  SUPMR_ASSIGN_OR_RETURN(auto sut_app, make_app(spec, /*for_ref=*/false));
  SUPMR_ASSIGN_OR_RETURN(auto ref_app, make_app(spec, /*for_ref=*/true));
  // The container axis applies to the SUT only: the oracle twin always runs
  // each app's default container, so a combining cell is a true differential
  // (an app without a combiner rejects here instead of falling back).
  SUPMR_RETURN_IF_ERROR(sut_app->use_container(spec.container));

  ConformanceOutcome outcome;
  RefResult ref;
  if (multi) {
    wload::TextCorpusConfig tcfg;
    tcfg.seed = spec.corpus.seed;
    const std::uint64_t per_file =
        std::max<std::uint64_t>(1, spec.corpus.bytes /
                                       std::max<std::uint64_t>(
                                           1, spec.corpus.num_files));
    auto files = wload::generate_text_files(
        tcfg, static_cast<std::size_t>(spec.corpus.num_files), per_file);
    ingest::MultiFileSource source(files,
                                   static_cast<std::size_t>(
                                       spec.files_per_chunk),
                                   spec.io);
    SUPMR_ASSIGN_OR_RETURN(outcome.job, run_sut(*sut_app, source, cfg));

    ingest::MultiFileSource ref_source(files, 0);  // all files, one round
    SUPMR_ASSIGN_OR_RETURN(ref, run_ref(*ref_app, ref_source));
  } else {
    std::string data;
    if (corpus_override != nullptr) {
      data = *corpus_override;
    } else {
      SUPMR_ASSIGN_OR_RETURN(data, make_corpus(spec));
    }
    auto format = make_format(spec);
    std::shared_ptr<const storage::Device> dev =
        std::make_shared<storage::MemDevice>(data, "conformance-input");
    if (plan) dev = std::make_shared<storage::FaultDevice>(dev, *plan);
    if (cfg.recovery.policy.enabled()) {
      dev = std::make_shared<fault::RetryingDevice>(dev, cfg.recovery.policy);
    }
    // MemDevice lends views, so io=mmap cells exercise the genuinely
    // zero-copy path (borrowed spans all the way into map tasks) even
    // though the corpus is in-memory; fault/retry wrappers stacked above
    // refuse views and force the per-chunk copying fallback.
    ingest::SingleDeviceSource source(dev, format, spec.chunk_bytes, spec.io);
    SUPMR_ASSIGN_OR_RETURN(outcome.job, run_sut(*sut_app, source, cfg));

    // The oracle's input: the full corpus, or — for a degraded run — the
    // concatenation of the chunk extents the run did not skip.
    std::string ref_data;
    if (outcome.job.chunks_skipped > 0) {
      auto clean =
          std::make_shared<storage::MemDevice>(data, "conformance-oracle");
      ingest::SingleDeviceSource planner(clean, format, spec.chunk_bytes);
      SUPMR_ASSIGN_OR_RETURN(auto extents, planner.plan());
      std::set<std::uint64_t> skipped;
      for (const auto& timing : outcome.job.pipeline.chunks) {
        if (timing.skipped) skipped.insert(timing.index);
      }
      for (const auto& extent : extents) {
        if (skipped.count(extent.index) == 0) {
          ref_data.append(data, extent.offset, extent.length);
        }
      }
    } else {
      ref_data = data;
    }
    auto ref_dev =
        std::make_shared<storage::MemDevice>(ref_data, "conformance-ref");
    ingest::SingleDeviceSource ref_source(ref_dev, format, 0);
    SUPMR_ASSIGN_OR_RETURN(ref, run_ref(*ref_app, ref_source));
  }

  outcome.sut_canonical = sut_app->canonical_output();
  outcome.ref_canonical = std::move(ref.canonical);
  outcome.match = outcome.sut_canonical == outcome.ref_canonical;
  if (!outcome.match) {
    outcome.diff = diff_summary(outcome.sut_canonical, outcome.ref_canonical);
  } else {
    outcome.diff = "identical";
  }
  return outcome;
}

}  // namespace

StatusOr<ConformanceOutcome> run_cell(const core::ReplaySpec& spec,
                                      const std::string* corpus_override) {
  return run_cell_impl(
      spec, corpus_override,
      [](core::Application& app, const ingest::IngestSource& source,
         const core::JobConfig& cfg) {
        core::MapReduceJob job(app, source, cfg);
        return job.run(cfg.mode);
      });
}

StatusOr<ConformanceOutcome> run_cell_managed(
    const core::ReplaySpec& spec, runtime::JobManager& manager,
    const ManagedCellOptions& opts, const std::string* corpus_override) {
  if (spec.is_cluster()) {
    return Status::InvalidArgument(
        "conformance: cluster cells run their own node runtimes and cannot "
        "go through a JobManager");
  }
  return run_cell_impl(
      spec, corpus_override,
      [&](core::Application& app, const ingest::IngestSource& source,
          const core::JobConfig& cfg) -> StatusOr<core::JobResult> {
        runtime::JobRequest request;
        request.app = &app;
        request.source = &source;
        request.config = cfg;
        request.priority = opts.priority;
        // threads=0 leases max(map, reduce) from cfg — i.e. spec.threads —
        // so the managed cell runs the exact lattice geometry.
        request.threads = opts.threads;
        request.memory_bytes = opts.memory_bytes;
        request.name = opts.name.empty() ? "cell-" + spec.app : opts.name;
        SUPMR_ASSIGN_OR_RETURN(runtime::JobHandle handle,
                               manager.submit(std::move(request)));
        return handle.wait();
      });
}

StatusOr<std::string> write_repro(const core::ReplaySpec& spec,
                                  const std::string& dir,
                                  const std::string& name) {
  std::string path = name + ".json";
  if (!dir.empty()) {
    ::mkdir(dir.c_str(), 0777);  // best effort; fopen below reports failure
    path = dir + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + path);
  const std::string json = spec.to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return Status::IoError("short write to " + path);
  return path;
}

}  // namespace supmr::ref
