// The sequential reference runtime: the conformance oracle.
//
// RefJob runs any core::Application through the most boring schedule that
// satisfies the Application contract — one mapper thread, chunks strictly
// in plan order, one reduce partition, the pairwise merge plan with a
// single-thread pool. No ingest pipeline, no spill pressure, no p-way
// splitting, no partitioned shuffle: every subsystem the SupMR runtime adds
// on top of Phoenix-style MapReduce (PAPER.md §III–IV) is absent, so its
// canonical_output() is what the optimized lattice cells must reproduce
// byte-for-byte (tests/harness/). It doubles as the honest floor for bench
// comparisons (bench/ref_baseline.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "core/application.hpp"
#include "ingest/source.hpp"

namespace supmr::ref {

struct RefResult {
  std::string canonical;         // Application::canonical_output()
  std::uint64_t result_count = 0;
  std::uint64_t chunks = 0;
};

// Runs `app` to completion over `source`. The app must be freshly
// constructed (init has not been called). Callers that want the oracle to
// see the whole input as one round pass a source with chunk_bytes = 0 /
// files_per_chunk = 0; any chunking is accepted — the reference result is
// chunking-independent by the metamorphic properties the harness asserts.
StatusOr<RefResult> run_ref(core::Application& app,
                            const ingest::IngestSource& source);

}  // namespace supmr::ref
