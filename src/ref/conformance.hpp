// One conformance cell: run a ReplaySpec's app + config against the SupMR
// runtime AND the sequential reference runtime, and compare canonical
// outputs byte for byte.
//
// This is the shared engine behind the e2e differential harness
// (tests/harness/) and `supmr replay <file>`: a cell that diverges in CI is
// written out as a ReplaySpec JSON, and replaying that file re-enters this
// exact function with the exact same seeded corpus and config.
//
// Degrade cells (spec.degrade + a permanent fault plan) compare against the
// oracle run on the SURVIVING byte ranges: the chunk plan is recomputed on
// an unfaulted device (plans are deterministic in the input bytes and chunk
// size), the chunks the run reported skipped are dropped, and the reference
// consumes the concatenation of the rest — chunk boundaries sit on record
// boundaries by the RecordFormat contract, so the splice is well-formed.
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "core/job.hpp"
#include "core/replay.hpp"

namespace supmr::runtime {
class JobManager;
}  // namespace supmr::runtime

namespace supmr::ref {

struct ConformanceOutcome {
  bool match = false;
  std::string diff;           // human-readable first-divergence summary
  std::string sut_canonical;  // the lattice cell's canonical output
  std::string ref_canonical;  // the reference runtime's canonical output
  core::JobResult job;        // the SUT run's result (degrade accounting...);
                              // for graph cells, the sink stage's result
  // Graph cells only (spec.is_graph()): stage-handoff accounting from the
  // executor, so the harness can assert a forced-spill cell really spilled.
  std::uint64_t graph_stages = 0;
  std::uint64_t graph_handoff_bytes = 0;
  std::uint64_t graph_spill_bytes = 0;
  std::uint64_t graph_spill_files = 0;
  // Cluster cells only (spec.is_cluster()): shuffle accounting from the
  // sharded runtime (src/cluster/), so the harness can assert conservation
  // (shuffle + local == map output) and that a budgeted cell really spilled.
  std::uint64_t cluster_nodes = 0;
  std::uint64_t cluster_shuffle_bytes = 0;
  std::uint64_t cluster_local_bytes = 0;
  std::uint64_t cluster_map_output_bytes = 0;
  std::uint64_t cluster_spill_runs = 0;
  std::uint64_t cluster_recv_max_bytes = 0;
  std::uint64_t cluster_recv_min_bytes = 0;
};

// Regenerates the cell's seeded corpus (single-device kinds; the
// "multi-text" kind is materialized inside run_cell). Exposed so the
// metamorphic suite can permute a corpus and re-run the cell on it.
StatusOr<std::string> make_corpus(const core::ReplaySpec& spec);

// Runs the cell. `corpus_override` (optional) replaces the generated
// corpus for single-device apps — the metamorphic permutation tests use it;
// replay and the differential lattice pass nullptr.
StatusOr<ConformanceOutcome> run_cell(
    const core::ReplaySpec& spec,
    const std::string* corpus_override = nullptr);

// Lease parameters for run_cell_managed's submission; zeros defer to the
// manager's defaults (threads additionally defers to spec.threads).
struct ManagedCellOptions {
  int priority = 0;
  std::size_t threads = 0;
  std::size_t memory_bytes = 0;
  std::string name;
};

// run_cell, but the SUT job goes through `manager` — shared pool, shared
// chunk buffers, admission, lease — instead of running inline with private
// resources. The oracle side is identical, so this proves a managed job
// (possibly racing other jobs on the same manager) stays byte-identical to
// the sequential reference.
StatusOr<ConformanceOutcome> run_cell_managed(
    const core::ReplaySpec& spec, runtime::JobManager& manager,
    const ManagedCellOptions& opts = {},
    const std::string* corpus_override = nullptr);

// First-divergence summary between two canonical outputs ("identical" when
// equal). Printable context around the mismatch, non-printables escaped.
std::string diff_summary(const std::string& sut, const std::string& ref);

// Writes spec.to_json() to <dir>/<name>.json (dir created best-effort;
// empty dir = current directory). Returns the path written.
StatusOr<std::string> write_repro(const core::ReplaySpec& spec,
                                  const std::string& dir,
                                  const std::string& name);

}  // namespace supmr::ref
