// Sequential reference execution of a JobGraph: the chained-app oracle.
//
// Runs every stage through ref::run_ref (one mapper, plan order, one reduce
// partition, pairwise merge) in topological order, handing canonical
// outputs across edges as plain in-memory strings — no executor, no spill
// policy, no shared runtime. Stage JobConfigs and GraphOptions are
// deliberately ignored: whatever handoff/budget/lease geometry the SUT
// executor picks, its final bytes must match this boring walk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "graph/job_graph.hpp"

namespace supmr::ref {

struct GraphRefResult {
  std::string canonical;                 // the sink stage's canonical output
  std::vector<std::string> stage_names;  // executed (topological) order
  std::uint64_t result_count = 0;        // the sink stage's result count
};

StatusOr<GraphRefResult> run_graph(const graph::JobGraph& graph);

}  // namespace supmr::ref
