#include "storage/mem_device.hpp"

#include <algorithm>
#include <cstring>

namespace supmr::storage {

StatusOr<std::size_t> MemDevice::read_at(std::uint64_t offset,
                                         std::span<char> out) const {
  if (offset > data_.size()) {
    return Status::OutOfRange("read at offset " + std::to_string(offset) +
                              " past end of " + name_ + " (size " +
                              std::to_string(data_.size()) + ")");
  }
  const std::size_t n =
      std::min<std::uint64_t>(out.size(), data_.size() - offset);
  std::memcpy(out.data(), data_.data() + offset, n);
  return n;
}

}  // namespace supmr::storage
