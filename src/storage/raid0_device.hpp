// RAID-0 stripe set over member devices.
//
// The paper's testbed stored inputs on 3 HDDs in RAID-0. Logical byte i
// lives on member (i / stripe) % members at member offset computed from the
// stripe geometry. Reads spanning stripes fan out to the members; the
// aggregate model's bandwidth is the sum of member bandwidths (which is how
// 3 disks reach 384 MB/s).
#pragma once

#include <memory>
#include <vector>

#include "storage/device.hpp"

namespace supmr::storage {

class Raid0Device final : public Device {
 public:
  // members: equal-priority stripe members. stripe_bytes: stripe unit.
  // The logical size is members * min(member size) rounded down to a whole
  // stripe row — matching md-raid semantics for unequal members.
  Raid0Device(std::vector<std::shared_ptr<const Device>> members,
              std::uint64_t stripe_bytes, std::string name = "raid0");

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;
  std::uint64_t size() const override { return size_; }
  std::string_view name() const override { return name_; }
  DeviceModel model() const override;

  std::size_t member_count() const { return members_.size(); }
  std::uint64_t stripe_bytes() const { return stripe_bytes_; }

 private:
  std::vector<std::shared_ptr<const Device>> members_;
  std::uint64_t stripe_bytes_;
  std::uint64_t size_;
  std::string name_;
};

}  // namespace supmr::storage
