// File-backed device exposing the file as one read-only mmap mapping.
//
// The zero-copy counterpart of FileDevice: read_at still works (memcpy out
// of the mapping, so every wrapper and spill-reader composes unchanged), but
// supports_views()/view_at lend borrowed spans straight into the page cache
// — the ingest layer builds non-owning chunks from them and the map phase
// scans file bytes with zero intermediate copies (paper's premise: the disk
// and memory *bandwidth* is the bottleneck, so spend it once, not twice).
//
// Empty files are legal: mmap(2) rejects length 0 with EINVAL, so a 0-byte
// file keeps a null mapping and serves empty reads/views.
#pragma once

#include <memory>
#include <string>

#include "storage/device.hpp"

namespace supmr::storage {

class MmapDevice final : public Device {
 public:
  // Opens `path` read-only and maps it in full.
  static StatusOr<std::unique_ptr<MmapDevice>> open(const std::string& path);

  ~MmapDevice() override;
  MmapDevice(const MmapDevice&) = delete;
  MmapDevice& operator=(const MmapDevice&) = delete;

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;
  std::uint64_t size() const override { return size_; }
  std::string_view name() const override { return path_; }

  bool supports_views() const override { return true; }
  std::span<const char> view_at(std::uint64_t offset,
                                std::size_t length) const override;

 private:
  MmapDevice(const char* data, std::uint64_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  const char* data_;  // nullptr iff size_ == 0
  std::uint64_t size_;
  std::string path_;
};

}  // namespace supmr::storage
