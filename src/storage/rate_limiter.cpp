#include "storage/rate_limiter.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "obs/macros.hpp"

namespace supmr::storage {

RateLimiter::RateLimiter(double rate_bps, std::uint64_t burst_bytes)
    : rate_bps_(rate_bps),
      burst_s_(burst_bytes > 0 ? double(burst_bytes) / rate_bps
                               : 0.05) {
  assert(rate_bps > 0.0);
  virtual_clock_ = clock::now();
}

void RateLimiter::acquire(std::uint64_t bytes) {
  const auto duration =
      std::chrono::duration_cast<clock::duration>(
          std::chrono::duration<double>(double(bytes) / rate_bps_));
  clock::time_point completes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = clock::now();
    const auto burst_floor =
        now - std::chrono::duration_cast<clock::duration>(
                  std::chrono::duration<double>(burst_s_));
    // Idle credit is capped: the clock never lags real time by more than
    // the burst window.
    virtual_clock_ = std::max(virtual_clock_, burst_floor);
    virtual_clock_ += duration;
    completes = virtual_clock_;
  }
  SUPMR_COUNTER_ADD("storage.throttle.bytes", bytes);
  const auto wait = completes - clock::now();
  if (wait > clock::duration::zero()) {
    SUPMR_HIST_OBSERVE(
        "storage.throttle.wait_us",
        std::chrono::duration_cast<std::chrono::microseconds>(wait).count());
    SUPMR_TRACE_SCOPE_VAR(span, "storage", "storage.throttle.wait");
    SUPMR_TRACE_SET_ARG(span, "bytes", bytes);
    std::this_thread::sleep_until(completes);
  }
}

}  // namespace supmr::storage
