#include "storage/mmap_device.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/macros.hpp"

namespace supmr::storage {

StatusOr<std::unique_ptr<MmapDevice>> MmapDevice::open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("fstat(" + path + "): " + std::strerror(err));
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  const char* data = nullptr;
  if (size > 0) {  // mmap(len=0) is EINVAL; empty files keep a null mapping
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("mmap(" + path + "): " + std::strerror(err));
    }
    // Ingest walks chunks front to back; tell the kernel to read ahead.
    ::madvise(map, size, MADV_SEQUENTIAL);
    data = static_cast<const char*>(map);
  }
  // The mapping outlives the descriptor; holding the fd open buys nothing.
  ::close(fd);
  return std::unique_ptr<MmapDevice>(new MmapDevice(data, size, path));
}

MmapDevice::~MmapDevice() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

StatusOr<std::size_t> MmapDevice::read_at(std::uint64_t offset,
                                          std::span<char> out) const {
  if (offset > size_) {
    return Status::OutOfRange("read at offset " + std::to_string(offset) +
                              " past end of " + path_);
  }
  const std::size_t n =
      std::min<std::uint64_t>(out.size(), size_ - offset);
  if (n > 0) std::memcpy(out.data(), data_ + offset, n);
  SUPMR_COUNTER_ADD("storage.mmap.read_bytes", n);
  return n;
}

std::span<const char> MmapDevice::view_at(std::uint64_t offset,
                                          std::size_t length) const {
  if (offset > size_ || length > size_ - offset) return {};
  SUPMR_COUNTER_ADD("storage.mmap.view_bytes", length);
  return std::span<const char>(data_ + offset, length);
}

}  // namespace supmr::storage
