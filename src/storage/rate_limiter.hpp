// Reservation-based rate limiter (bytes/second).
//
// Shared by throttled devices to emulate a bandwidth-limited channel in
// wall-clock runs: the paper's 384 MB/s RAID-0 or the case study's shared
// 1 Gb/s ethernet link. Multiple devices sharing one limiter contend for the
// same bandwidth, which is exactly the HDFS-behind-one-link scenario.
//
// Implementation: a virtual transmission clock. Each acquire(n) reserves
// n/rate seconds on the clock and sleeps until its reservation completes, so
// throughput is exact for any request size (a token bucket refilled in sleep
// slices systematically under-delivers for requests larger than the
// bucket). The clock may lag real time by up to burst_bytes/rate, which is
// the burst credit: short reads after an idle period proceed immediately.
//
// Thread-safe; concurrent acquirers serialize their reservations in arrival
// order, which shares the bandwidth fairly at chunk granularity.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace supmr::storage {

class RateLimiter {
 public:
  // rate_bps: sustained budget. burst_bytes: maximum idle credit, defaults
  // to ~50 ms of budget so short reads are not over-delayed.
  explicit RateLimiter(double rate_bps, std::uint64_t burst_bytes = 0);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  // Blocks until `bytes` of budget has been transmitted on the virtual
  // clock.
  void acquire(std::uint64_t bytes);

  double rate_bps() const { return rate_bps_; }

 private:
  using clock = std::chrono::steady_clock;

  const double rate_bps_;
  const double burst_s_;  // how far the virtual clock may lag real time

  std::mutex mu_;
  clock::time_point virtual_clock_;  // end of the last reservation
};

}  // namespace supmr::storage
