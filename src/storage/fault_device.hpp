// Fault-injection device wrapper for failure testing.
//
// Wraps any device and injects faults according to a declarative, seeded
// fault::FaultPlan (transient / permanent / slow reads — see
// fault/fault_plan.hpp for semantics and the text grammar). Used by the
// test suite and the CLI's --fault-plan flag to verify that ingest errors
// propagate cleanly out of the pipeline — and, with the fault layer's
// RetryPolicy stacked on top, that transient faults are absorbed instead
// of killing the job.
//
// Accounting contract: permanent (poisoned-range) failures are checked
// FIRST and do not consume a call index — calls() counts only reads that
// reach the transient/pass-through path. This keeps call-indexed faults
// (fail_call lists, transient '@' gates) composable with poisoned ranges:
// adding a range to a plan never shifts which call a transient lands on.
//
// The plan is immutable after construction — the pre-PR-3 mutating setters
// are gone; build the equivalent FaultPlan (fail_call= / permanent=
// clauses) and construct a fresh wrapper instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "storage/device.hpp"

namespace supmr::storage {

class FaultDevice final : public Device {
 public:
  // A pass-through wrapper: fault-free with an empty plan.
  explicit FaultDevice(const Device* base)
      : FaultDevice(base, fault::FaultPlan{}) {}
  FaultDevice(const Device* base, fault::FaultPlan plan)
      : FaultDevice(std::shared_ptr<const Device>(base, [](const Device*) {}),
                    std::move(plan)) {}
  FaultDevice(std::shared_ptr<const Device> base, fault::FaultPlan plan);

  const fault::FaultPlan& plan() const { return plan_; }

  // Reads that reached call accounting (everything except poisoned-range
  // hits). Planning probes and data reads both count.
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  // Reads killed by a poisoned range (independent of calls()).
  std::uint64_t range_hits() const {
    return range_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t transients_injected() const {
    return transients_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_injected() const {
    return slow_.load(std::memory_order_relaxed);
  }

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;

  std::uint64_t size() const override { return base_->size(); }
  std::string_view name() const override { return base_->name(); }
  DeviceModel model() const override { return base_->model(); }

 private:
  std::shared_ptr<const Device> base_;
  const fault::FaultPlan plan_;
  mutable std::mutex mu_;  // guards rng_ (the plan itself is immutable)
  mutable Xoshiro256 rng_;
  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint64_t> range_hits_{0};
  mutable std::atomic<std::uint64_t> transients_{0};
  mutable std::atomic<std::uint64_t> slow_{0};
};

}  // namespace supmr::storage
