// Fault-injection device wrapper for failure testing.
//
// Wraps any device and injects faults according to a declarative, seeded
// fault::FaultPlan (transient / permanent / slow reads — see
// fault/fault_plan.hpp for semantics and the text grammar). Used by the
// test suite and the CLI's --fault-plan flag to verify that ingest errors
// propagate cleanly out of the pipeline — and, with the fault layer's
// RetryPolicy stacked on top, that transient faults are absorbed instead
// of killing the job.
//
// Accounting contract: permanent (poisoned-range) failures are checked
// FIRST and do not consume a call index — calls() counts only reads that
// reach the transient/pass-through path. This keeps call-indexed faults
// (fail_on_call, transient '@' gates) composable with poisoned ranges:
// adding a range to a plan never shifts which call a transient lands on.
//
// The legacy setter API (fail_on_call / fail_on_range) survives as a thin
// compat shim over the plan for tests slated for migration.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "storage/device.hpp"

namespace supmr::storage {

class FaultDevice final : public Device {
 public:
  // Fault-free until a plan (or legacy setter) is applied.
  explicit FaultDevice(const Device* base)
      : FaultDevice(base, fault::FaultPlan{}) {}
  FaultDevice(const Device* base, fault::FaultPlan plan)
      : FaultDevice(std::shared_ptr<const Device>(base, [](const Device*) {}),
                    std::move(plan)) {}
  FaultDevice(std::shared_ptr<const Device> base, fault::FaultPlan plan);

  // Legacy compat shims (DEPRECATED — build a FaultPlan instead).
  // Fail the `n`-th accounted read_at call (0-based), once.
  void fail_on_call(std::uint64_t n) { fail_call_ = n; }
  // Fail any read overlapping [lo, hi) — folds into plan().permanent.
  void fail_on_range(std::uint64_t lo, std::uint64_t hi) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_.permanent.emplace_back(lo, hi);
  }

  const fault::FaultPlan& plan() const { return plan_; }

  // Reads that reached call accounting (everything except poisoned-range
  // hits). Planning probes and data reads both count.
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  // Reads killed by a poisoned range (independent of calls()).
  std::uint64_t range_hits() const {
    return range_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t transients_injected() const {
    return transients_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_injected() const {
    return slow_.load(std::memory_order_relaxed);
  }

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;

  std::uint64_t size() const override { return base_->size(); }
  std::string_view name() const override { return base_->name(); }
  DeviceModel model() const override { return base_->model(); }

 private:
  std::shared_ptr<const Device> base_;
  fault::FaultPlan plan_;
  std::uint64_t fail_call_ = std::numeric_limits<std::uint64_t>::max();
  mutable std::mutex mu_;  // guards rng_ and plan_.permanent growth
  mutable Xoshiro256 rng_;
  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint64_t> range_hits_{0};
  mutable std::atomic<std::uint64_t> transients_{0};
  mutable std::atomic<std::uint64_t> slow_{0};
};

}  // namespace supmr::storage
