// Fault-injection device wrapper for failure testing.
//
// Wraps any device and fails reads according to a policy: the Nth read call,
// or any read overlapping a poisoned byte range. Used by the test suite to
// verify that ingest errors propagate cleanly out of the pipeline instead of
// wedging the double buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "storage/device.hpp"

namespace supmr::storage {

class FaultDevice final : public Device {
 public:
  explicit FaultDevice(const Device* base) : base_(base) {}

  // Fail the `n`-th read_at call (0-based).
  void fail_on_call(std::uint64_t n) { fail_call_ = n; }
  // Fail any read overlapping [lo, hi).
  void fail_on_range(std::uint64_t lo, std::uint64_t hi) {
    range_lo_ = lo;
    range_hi_ = hi;
  }

  std::uint64_t calls() const { return calls_.load(); }

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override {
    const std::uint64_t call = calls_.fetch_add(1);
    if (call == fail_call_) {
      return Status::IoError("injected fault on call " + std::to_string(call));
    }
    const std::uint64_t end = offset + out.size();
    if (offset < range_hi_ && end > range_lo_) {
      return Status::IoError("injected fault in poisoned range");
    }
    return base_->read_at(offset, out);
  }

  std::uint64_t size() const override { return base_->size(); }
  std::string_view name() const override { return base_->name(); }
  DeviceModel model() const override { return base_->model(); }

 private:
  const Device* base_;
  std::uint64_t fail_call_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t range_lo_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t range_hi_ = std::numeric_limits<std::uint64_t>::max();
  mutable std::atomic<std::uint64_t> calls_{0};
};

}  // namespace supmr::storage
