// File-backed device using positional reads (pread).
//
// pread carries no shared file cursor, so concurrent chunk reads need no
// locking. The device keeps one file descriptor for its lifetime (RAII).
#pragma once

#include <memory>
#include <string>

#include "storage/device.hpp"

namespace supmr::storage {

class FileDevice final : public Device {
 public:
  // Opens `path` read-only.
  static StatusOr<std::unique_ptr<FileDevice>> open(const std::string& path);

  ~FileDevice() override;
  FileDevice(const FileDevice&) = delete;
  FileDevice& operator=(const FileDevice&) = delete;

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;
  std::uint64_t size() const override { return size_; }
  std::string_view name() const override { return path_; }

 private:
  FileDevice(int fd, std::uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_;
  std::uint64_t size_;
  std::string path_;
};

}  // namespace supmr::storage
