#include "storage/hdfs_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <iterator>

namespace supmr::storage {

namespace {

class HdfsFileDevice final : public Device {
 public:
  HdfsFileDevice(const HdfsSimStore* store, const std::string* data,
                 std::string path, std::string name)
      : store_(store), data_(data), path_(std::move(path)),
        name_(std::move(name)) {}

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;
  std::uint64_t size() const override { return data_->size(); }
  std::string_view name() const override { return name_; }
  DeviceModel model() const override {
    // The shared link is the end-to-end bottleneck; seeks are hidden by
    // HDFS's large sequential blocks.
    return DeviceModel{.bandwidth_bps = store_->config().link_bps,
                       .seek_s = 0.0005};
  }

 private:
  const HdfsSimStore* store_;
  const std::string* data_;
  std::string path_;  // placement lookups go through store_->block_node
  std::string name_;
};

}  // namespace

HdfsSimStore::HdfsSimStore(HdfsConfig config) : config_(config) {
  assert(config_.num_nodes > 0 && config_.block_bytes > 0);
  link_ = std::make_unique<RateLimiter>(config_.link_bps);
  node_disks_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i)
    node_disks_.push_back(std::make_unique<RateLimiter>(config_.per_node_bps));
}

void HdfsSimStore::put(const std::string& path, std::string data) {
  files_[path] = std::move(data);
}

bool HdfsSimStore::exists(const std::string& path) const {
  return files_.count(path) != 0;
}

std::vector<std::string> HdfsSimStore::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, data] : files_) names.push_back(name);
  return names;
}

std::size_t HdfsSimStore::block_node(const std::string& path,
                                     std::uint64_t block_index) const {
  auto it = files_.find(path);
  assert(it != files_.end());
  // Rank in name order, not insertion order: placement depends only on the
  // stored file set.
  const std::size_t rank =
      static_cast<std::size_t>(std::distance(files_.begin(), it));
  return (rank + static_cast<std::size_t>(block_index)) % config_.num_nodes;
}

StatusOr<std::unique_ptr<Device>> HdfsSimStore::open(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("hdfs: no such file: " + path);
  }
  return std::unique_ptr<Device>(
      new HdfsFileDevice(this, &it->second, path, "hdfs:" + path));
}

namespace {

StatusOr<std::size_t> HdfsFileDevice::read_at(std::uint64_t offset,
                                              std::span<char> out) const {
  if (offset > data_->size()) {
    return Status::OutOfRange("hdfs read past end of " + name_);
  }
  const std::uint64_t block_bytes = store_->config().block_bytes;
  std::size_t total = 0;
  while (total < out.size() && offset + total < data_->size()) {
    const std::uint64_t pos = offset + total;
    const std::uint64_t block = pos / block_bytes;
    const std::uint64_t in_block = pos % block_bytes;
    const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
        {out.size() - total, block_bytes - in_block, data_->size() - pos}));
    // Pay the source node's disk, then the shared link.
    const std::size_t node = store_->block_node(path_, block);
    store_->node_disk(node).acquire(want);
    store_->link().acquire(want);
    std::memcpy(out.data() + total, data_->data() + pos, want);
    total += want;
  }
  return total;
}

}  // namespace

}  // namespace supmr::storage
