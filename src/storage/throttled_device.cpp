#include "storage/throttled_device.hpp"

namespace supmr::storage {

StatusOr<std::size_t> ThrottledDevice::read_at(std::uint64_t offset,
                                               std::span<char> out) const {
  // Charge for what will actually transfer (short reads at EOF pay less).
  const std::uint64_t avail =
      offset >= base_->size() ? 0 : base_->size() - offset;
  const std::uint64_t expect = std::min<std::uint64_t>(out.size(), avail);
  if (expect > 0) limiter_->acquire(expect);
  return base_->read_at(offset, out);
}

}  // namespace supmr::storage
