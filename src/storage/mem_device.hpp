// In-memory device: the test double and the backing for generated datasets
// that fit in RAM. Reads are memcpy; the model reports effectively infinite
// bandwidth unless overridden.
#pragma once

#include <string>
#include <vector>

#include "storage/device.hpp"

namespace supmr::storage {

class MemDevice final : public Device {
 public:
  explicit MemDevice(std::string data, std::string name = "mem")
      : data_(std::move(data)), name_(std::move(name)) {}
  MemDevice(std::vector<char> data, std::string name)
      : data_(data.begin(), data.end()), name_(std::move(name)) {}

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;
  std::uint64_t size() const override { return data_.size(); }
  std::string_view name() const override { return name_; }

  // The buffer is directly addressable, so MemDevice lends borrowed views
  // exactly like MmapDevice — the tests' zero-copy double (the conformance
  // harness runs its io=mmap axis over MemDevice-backed corpora).
  bool supports_views() const override { return true; }
  std::span<const char> view_at(std::uint64_t offset,
                                std::size_t length) const override {
    if (offset > data_.size() || length > data_.size() - offset) return {};
    return std::span<const char>(data_.data() + offset, length);
  }
  DeviceModel model() const override {
    return DeviceModel{.bandwidth_bps = 20.0e9, .seek_s = 0.0};
  }

  const std::string& contents() const { return data_; }

 private:
  std::string data_;
  std::string name_;
};

}  // namespace supmr::storage
