// In-memory device: the test double and the backing for generated datasets
// that fit in RAM. Reads are memcpy; the model reports effectively infinite
// bandwidth unless overridden.
#pragma once

#include <string>
#include <vector>

#include "storage/device.hpp"

namespace supmr::storage {

class MemDevice final : public Device {
 public:
  explicit MemDevice(std::string data, std::string name = "mem")
      : data_(std::move(data)), name_(std::move(name)) {}
  MemDevice(std::vector<char> data, std::string name)
      : data_(data.begin(), data.end()), name_(std::move(name)) {}

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;
  std::uint64_t size() const override { return data_.size(); }
  std::string_view name() const override { return name_; }
  DeviceModel model() const override {
    return DeviceModel{.bandwidth_bps = 20.0e9, .seek_s = 0.0};
  }

  const std::string& contents() const { return data_; }

 private:
  std::string data_;
  std::string name_;
};

}  // namespace supmr::storage
