// Storage device abstraction.
//
// The ingest layer reads chunks through this interface so the same runtime
// code runs against a real file, an in-memory buffer (tests), a
// bandwidth-throttled wrapper (reproducing the paper's 384 MB/s RAID-0 in
// wall-clock experiments), a RAID-0 stripe set, or the HDFS-like remote
// store of the paper's case study.
//
// DeviceModel carries the analytic performance parameters of a device for
// the simulated executor; real devices report the model that matches their
// throttling so wall-clock and virtual-time runs describe the same hardware.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace supmr::storage {

// Analytic cost model for the simulated executor.
struct DeviceModel {
  double bandwidth_bps = 384.0e6;  // paper's RAID-0 aggregate read speed
  double seek_s = 0.008;           // per non-sequential access (HDD seek)

  // Time to transfer `bytes` sequentially (no seek).
  double transfer_time(std::uint64_t bytes) const {
    return double(bytes) / bandwidth_bps;
  }
  // Time for one access beginning with a seek.
  double access_time(std::uint64_t bytes) const {
    return seek_s + transfer_time(bytes);
  }
};

class Device {
 public:
  virtual ~Device() = default;

  // Reads up to out.size() bytes at `offset`. Returns the number of bytes
  // read; a return of 0 means end-of-device. Most devices fill the whole
  // span away from EOF, but the contract permits mid-file short reads (a
  // device may cap its per-call transfer) — callers that need an exact
  // count must loop (see read_full in ingest/record_format.cpp). Thread-
  // safe: multiple readers may call concurrently (positional reads carry no
  // shared cursor).
  virtual StatusOr<std::size_t> read_at(std::uint64_t offset,
                                        std::span<char> out) const = 0;

  virtual std::uint64_t size() const = 0;
  virtual std::string_view name() const = 0;

  // Zero-copy seam: devices whose bytes are directly addressable (an mmap
  // mapping, an in-memory buffer) can lend borrowed views so the ingest
  // layer skips the read_at copy entirely. view_at returns a span of
  // exactly `length` bytes valid for the device's lifetime, or an empty
  // span when the range is out of bounds (length == 0 yields a valid empty
  // view). Wrapper devices (throttling, fault injection, retry) must NOT
  // forward views: a borrowed page cannot be throttled, faulted, or
  // retried, so leaving supports_views() false there is what makes the
  // ingest layer fall back to the copying path under those stacks.
  virtual bool supports_views() const { return false; }
  virtual std::span<const char> view_at(std::uint64_t offset,
                                        std::size_t length) const {
    (void)offset;
    (void)length;
    return {};
  }

  // Performance model for simulation; defaults describe the paper's RAID-0.
  virtual DeviceModel model() const { return DeviceModel{}; }
};

}  // namespace supmr::storage
