#include "storage/raid0_device.hpp"

#include <algorithm>
#include <cassert>

namespace supmr::storage {

Raid0Device::Raid0Device(std::vector<std::shared_ptr<const Device>> members,
                         std::uint64_t stripe_bytes, std::string name)
    : members_(std::move(members)),
      stripe_bytes_(stripe_bytes),
      name_(std::move(name)) {
  assert(!members_.empty() && stripe_bytes_ > 0);
  std::uint64_t min_member = members_[0]->size();
  for (const auto& m : members_) min_member = std::min(min_member, m->size());
  // Whole stripe rows only: each row consumes stripe_bytes from every member.
  const std::uint64_t rows = min_member / stripe_bytes_;
  size_ = rows * stripe_bytes_ * members_.size();
}

StatusOr<std::size_t> Raid0Device::read_at(std::uint64_t offset,
                                           std::span<char> out) const {
  if (offset > size_) {
    return Status::OutOfRange("raid0 read past end");
  }
  std::size_t total = 0;
  while (total < out.size() && offset + total < size_) {
    const std::uint64_t logical = offset + total;
    const std::uint64_t stripe_index = logical / stripe_bytes_;
    const std::uint64_t in_stripe = logical % stripe_bytes_;
    const std::size_t member =
        static_cast<std::size_t>(stripe_index % members_.size());
    const std::uint64_t row = stripe_index / members_.size();
    const std::uint64_t member_off = row * stripe_bytes_ + in_stripe;
    const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
        {out.size() - total, stripe_bytes_ - in_stripe, size_ - logical}));
    SUPMR_ASSIGN_OR_RETURN(
        std::size_t n,
        members_[member]->read_at(member_off,
                                  out.subspan(total, want)));
    total += n;
    if (n < want) break;  // member shorter than declared — stop cleanly
  }
  return total;
}

DeviceModel Raid0Device::model() const {
  DeviceModel agg;
  agg.bandwidth_bps = 0.0;
  agg.seek_s = 0.0;
  for (const auto& m : members_) {
    const DeviceModel mm = m->model();
    agg.bandwidth_bps += mm.bandwidth_bps;
    agg.seek_s = std::max(agg.seek_s, mm.seek_s);
  }
  return agg;
}

}  // namespace supmr::storage
