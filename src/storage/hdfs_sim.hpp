// HDFS-like remote store behind one shared link (paper §VI.C.3, Fig. 7).
//
// The case study runs word count on a scale-up node that ingests from a
// 32-node HDFS cluster connected by 1 Gbit ethernet *behind one link*: the
// aggregate cluster can serve data fast, but everything funnels through the
// single NIC. We model that as:
//   * files split into fixed-size blocks, placed round-robin on data nodes,
//   * each data node's disk with its own bandwidth budget, and
//   * one shared link limiter every byte must also pass through.
// The shared link is the binding constraint (1 Gb/s ≈ 119 MiB/s << node
// aggregate), reproducing the long-ingest geometry of Fig. 7.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/device.hpp"
#include "storage/rate_limiter.hpp"

namespace supmr::storage {

struct HdfsConfig {
  std::size_t num_nodes = 32;
  std::uint64_t block_bytes = 4 * 1024 * 1024;
  double link_bps = 125.0e6;       // 1 Gbit/s payload rate
  double per_node_bps = 100.0e6;   // one local HDD per data node
};

class HdfsSimStore {
 public:
  explicit HdfsSimStore(HdfsConfig config);

  HdfsSimStore(const HdfsSimStore&) = delete;
  HdfsSimStore& operator=(const HdfsSimStore&) = delete;

  const HdfsConfig& config() const { return config_; }

  // Stores `data` under `path`. Blocks are placed round-robin across nodes
  // starting at the file's rank in name order, so placement is a pure
  // function of the stored file SET — two stores holding the same paths
  // agree on every block's node regardless of put order (real HDFS
  // placement is stickier than this, but put-order-sensitive placement made
  // contention tests unreproducible).
  void put(const std::string& path, std::string data);

  bool exists(const std::string& path) const;
  std::vector<std::string> list() const;

  // Opens a read-only device for `path`. Reads contend on the shared link
  // and on each block's node. The device borrows the store: the store must
  // outlive it (mirrors libhdfs, where handles borrow the connection).
  StatusOr<std::unique_ptr<Device>> open(const std::string& path) const;

  // Which node stores block `block_index` of `path`.
  std::size_t block_node(const std::string& path,
                         std::uint64_t block_index) const;

  // Resource accessors used by opened devices (and by tests asserting
  // contention behaviour).
  RateLimiter& link() const { return *link_; }
  RateLimiter& node_disk(std::size_t node) const { return *node_disks_[node]; }

 private:
  HdfsConfig config_;
  // Sorted by name: a file's round-robin start node is its rank here.
  std::map<std::string, std::string> files_;
  mutable std::unique_ptr<RateLimiter> link_;
  mutable std::vector<std::unique_ptr<RateLimiter>> node_disks_;
};

}  // namespace supmr::storage
