#include "storage/fault_device.hpp"

#include <string>
#include <thread>

#include "obs/macros.hpp"

namespace supmr::storage {

FaultDevice::FaultDevice(std::shared_ptr<const Device> base,
                         fault::FaultPlan plan)
    : base_(std::move(base)), plan_(std::move(plan)), rng_(plan_.seed) {}

StatusOr<std::size_t> FaultDevice::read_at(std::uint64_t offset,
                                           std::span<char> out) const {
  // Permanent faults first, without consuming a call index: a poisoned
  // range kills the read no matter how often it is retried, and call
  // accounting (fail_call lists / transient '@' gates) must not drift when
  // a range is added to the plan.
  if (plan_.poisons(offset, out.size())) {
    range_hits_.fetch_add(1, std::memory_order_relaxed);
    SUPMR_COUNTER_ADD("fault.injected_permanent", 1);
    return Status::IoError(
        "injected permanent fault: poisoned range overlaps offset " +
        std::to_string(offset));
  }

  const std::uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed);
  if (plan_.fails_call(call)) {
    transients_.fetch_add(1, std::memory_order_relaxed);
    SUPMR_COUNTER_ADD("fault.injected_transient", 1);
    return Status::IoError("injected fault on call " + std::to_string(call));
  }

  double slow_delay = 0.0;
  if (plan_.transient_p > 0.0 || plan_.slow_p > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (plan_.transient_p > 0.0 && call >= plan_.transient_after &&
        rng_.uniform_double() < plan_.transient_p) {
      transients_.fetch_add(1, std::memory_order_relaxed);
      SUPMR_COUNTER_ADD("fault.injected_transient", 1);
      return Status::IoError("injected transient fault on call " +
                             std::to_string(call));
    }
    if (plan_.slow_p > 0.0 && rng_.uniform_double() < plan_.slow_p) {
      slow_delay = plan_.slow_delay_s;
    }
  }
  if (slow_delay > 0.0) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    SUPMR_COUNTER_ADD("fault.injected_slow", 1);
    std::this_thread::sleep_for(std::chrono::duration<double>(slow_delay));
  }
  return base_->read_at(offset, out);
}

}  // namespace supmr::storage
