// Bandwidth-throttled device wrapper.
//
// Wraps any device and charges its reads against a RateLimiter, so
// wall-clock experiments on this machine's (fast, page-cached) filesystem
// behave like the paper's 384 MB/s RAID-0 — the ingest bottleneck becomes
// real again at small scale. The limiter may be shared across devices to
// model one channel feeding many files.
#pragma once

#include <memory>

#include "storage/device.hpp"
#include "storage/rate_limiter.hpp"

namespace supmr::storage {

class ThrottledDevice final : public Device {
 public:
  // Owns neither: `base` and `limiter` must outlive this device (shared_ptr
  // overload below owns both).
  ThrottledDevice(const Device* base, RateLimiter* limiter)
      : base_(base), limiter_(limiter) {}

  ThrottledDevice(std::shared_ptr<const Device> base,
                  std::shared_ptr<RateLimiter> limiter)
      : base_(base.get()),
        limiter_(limiter.get()),
        owned_base_(std::move(base)),
        owned_limiter_(std::move(limiter)) {}

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;
  std::uint64_t size() const override { return base_->size(); }
  std::string_view name() const override { return base_->name(); }
  DeviceModel model() const override {
    DeviceModel m = base_->model();
    m.bandwidth_bps = limiter_->rate_bps();
    return m;
  }

 private:
  const Device* base_;
  RateLimiter* limiter_;
  std::shared_ptr<const Device> owned_base_;
  std::shared_ptr<RateLimiter> owned_limiter_;
};

}  // namespace supmr::storage
