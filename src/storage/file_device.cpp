#include "storage/file_device.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/macros.hpp"

namespace supmr::storage {

StatusOr<std::unique_ptr<FileDevice>> FileDevice::open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("fstat(" + path + "): " + std::strerror(err));
  }
  return std::unique_ptr<FileDevice>(
      new FileDevice(fd, static_cast<std::uint64_t>(st.st_size), path));
}

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::size_t> FileDevice::read_at(std::uint64_t offset,
                                          std::span<char> out) const {
  if (offset > size_) {
    return Status::OutOfRange("read at offset " + std::to_string(offset) +
                              " past end of " + path_);
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t total = 0;
  while (total < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + total, out.size() - total,
                              static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread(" + path_ + "): " + std::strerror(errno));
    }
    if (n == 0) break;  // end of file
    total += static_cast<std::size_t>(n);
  }
  SUPMR_COUNTER_ADD("storage.file.read_bytes", total);
  SUPMR_HIST_OBSERVE(
      "storage.file.read_us",
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return total;
}

}  // namespace supmr::storage
