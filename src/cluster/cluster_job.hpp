// Sharded shuffle across simulated worker nodes — scale-up meets scale-out.
//
// run_cluster() executes one MapReduce job the way a small scale-out cluster
// would (paper §VI.C.3, Fig. 7): the input splits into N contiguous,
// record-aligned slices; N in-process WorkerNodes each run a full
// MapReduceJob over their slice on a private leased thread pool (honoring
// the config's mode/merge/io/container knobs, with an optional per-node
// ingest-disk RateLimiter); the per-node canonical outputs are then
// hash-partitioned across the nodes with the sampled-splitter machinery from
// src/merge/partitioned.hpp and shuffled — every cross-node byte charged
// against the sender NIC, an optional shared uplink, and the receiver NIC
// (the HdfsSimStore link-contention pattern) — and each owner node merges
// what it received per the app's ShardKind (cluster/protocol.hpp), spilling
// through merge::ExternalSorter when a fixed-record partition exceeds the
// node memory budget (the YTsaurus partition -> sort -> merge shape).
//
// The concatenation of owner outputs is byte-identical to the sequential
// oracle (src/ref/) for every participating app — that is the conformance
// contract tests/harness/cluster_conformance_test.cpp enforces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/application.hpp"
#include "core/job.hpp"
#include "core/job_config.hpp"
#include "ingest/record_format.hpp"

namespace supmr::cluster {

// Every node builds its own Application instance from this factory (nodes
// run concurrently; apps are not shareable).
using AppFactory = std::function<std::unique_ptr<core::Application>()>;

struct ClusterJob {
  // The full input corpus; sliced across nodes at planned chunk boundaries
  // (record-aligned by the RecordFormat contract).
  std::string input;
  std::shared_ptr<const ingest::RecordFormat> format;
  AppFactory make_app;
  // config.num_nodes and the node_*/uplink knobs drive the cluster; the
  // remaining fields configure each node's local MapReduceJob.
  core::JobConfig config;
  std::uint64_t chunk_bytes = 64 * 1024;
  // kFixedRecords only: the app's record width (routing and owner merges
  // operate on whole records).
  std::size_t record_bytes = 0;
  // Owner-side spill area for over-budget fixed-record partitions; must be
  // an existing directory when config.node_memory_budget > 0.
  std::string spill_dir;
};

struct NodeStats {
  core::JobResult job;              // the node-local MapReduceJob result
  std::uint64_t input_bytes = 0;    // slice size
  std::uint64_t map_output_bytes = 0;  // node canonical bytes (pre-shuffle)
  std::uint64_t sent_bytes = 0;     // shuffled to OTHER nodes
  std::uint64_t recv_bytes = 0;     // shuffled here from other nodes
  std::uint64_t local_bytes = 0;    // routed node-locally (never on the wire)
  std::uint64_t spill_runs = 0;     // owner-merge ExternalSorter runs
};

struct ClusterResult {
  std::string output;  // concatenated owner outputs == oracle bytes
  std::vector<NodeStats> nodes;
  // Conservation invariant: shuffle_bytes + local_bytes == map_output_bytes
  // (every map-output byte is routed exactly once).
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t map_output_bytes = 0;
  core::ShardKind shard = core::ShardKind::kNone;
  double elapsed_s = 0.0;
};

StatusOr<ClusterResult> run_cluster(const ClusterJob& job);

}  // namespace supmr::cluster
