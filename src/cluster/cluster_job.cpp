#include "cluster/cluster_job.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "cluster/protocol.hpp"
#include "ingest/source.hpp"
#include "merge/external_sorter.hpp"
#include "merge/partitioned.hpp"
#include "obs/macros.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::cluster {
namespace {

// Node input slices: group the deterministic chunk plan's extents into N
// contiguous runs, so every slice boundary is a record boundary and the
// concatenation of slices is exactly the input. Nodes past the extent count
// get empty slices (they still participate in the shuffle as owners).
StatusOr<std::vector<std::string>> slice_input(const ClusterJob& job,
                                               std::size_t nodes) {
  auto device =
      std::make_shared<storage::MemDevice>(job.input, "cluster-plan");
  ingest::SingleDeviceSource planner(device, job.format, job.chunk_bytes);
  SUPMR_ASSIGN_OR_RETURN(std::vector<ingest::ChunkExtent> extents,
                         planner.plan());
  std::vector<std::string> slices(nodes);
  const std::size_t e = extents.size();
  for (std::size_t k = 0; k < nodes; ++k) {
    const std::size_t lo = k * e / nodes;
    const std::size_t hi = (k + 1) * e / nodes;
    if (lo >= hi) continue;
    const std::uint64_t begin = extents[lo].offset;
    const std::uint64_t end = extents[hi - 1].offset + extents[hi - 1].length;
    slices[k] = job.input.substr(begin, end - begin);
  }
  return slices;
}

struct NodeRun {
  std::string canonical;
  NodeStats stats;
};

// One WorkerNode: a private MemDevice over the slice (throttled to the node
// disk rate when modeled), a fresh Application, and a full MapReduceJob on
// the node's own leased thread pool.
Status run_node(const ClusterJob& job, std::string slice,
                std::shared_ptr<storage::RateLimiter> disk, NodeRun& out) {
  core::JobConfig cfg = job.config;
  cfg.num_nodes = 0;  // the node-local job must not recurse the cluster knobs
  cfg.node_link_bps = 0.0;
  cfg.uplink_bps = 0.0;
  cfg.node_disk_bps = 0.0;
  cfg.node_memory_budget = 0;

  out.stats.input_bytes = slice.size();
  std::shared_ptr<const storage::Device> device =
      std::make_shared<storage::MemDevice>(std::move(slice), "cluster-node");
  if (disk != nullptr) {
    device = std::make_shared<storage::ThrottledDevice>(device, disk);
  }
  ingest::SingleDeviceSource source(device, job.format, job.chunk_bytes,
                                    cfg.io);

  std::unique_ptr<core::Application> app = job.make_app();
  if (app == nullptr) {
    return Status::InvalidArgument("cluster: application factory returned null");
  }
  SUPMR_RETURN_IF_ERROR(app->use_container(cfg.container));

  ThreadPool pool(std::max<std::size_t>(
      {cfg.num_map_threads, cfg.num_reduce_threads, 1}));
  core::MapReduceJob mr(*app, source, cfg);
  mr.attach_runtime(pool);
  // kAdaptive needs no extra wiring: the device and format auto-derive from
  // the node's SingleDeviceSource.
  SUPMR_ASSIGN_OR_RETURN(out.stats.job, mr.run(cfg.mode));
  out.canonical = app->canonical_output();
  out.stats.map_output_bytes = out.canonical.size();
  return Status::Ok();
}

std::uint64_t run_bytes(const std::vector<std::string_view>& run) {
  std::uint64_t bytes = 0;
  for (std::string_view r : run) bytes += r.size();
  return bytes;
}

// Owner-side merge of an over-budget fixed-record partition: the YTsaurus
// split-sort-merge shape via merge::ExternalSorter. key_bytes ==
// record_bytes because the canonical order IS full-record memcmp.
StatusOr<std::string> external_merge_fixed(
    const ClusterJob& job, const std::vector<std::vector<std::string_view>>& runs,
    std::uint64_t* spill_runs) {
  merge::ExternalSorterOptions options;
  options.record_bytes = static_cast<std::uint32_t>(job.record_bytes);
  options.key_bytes = static_cast<std::uint32_t>(job.record_bytes);
  options.memory_budget_bytes = job.config.node_memory_budget;
  options.spill_dir = job.spill_dir;
  ThreadPool pool(1);
  merge::ExternalSorter sorter(pool, options);
  for (const auto& run : runs) {
    for (std::string_view record : run) {
      SUPMR_RETURN_IF_ERROR(
          sorter.add(std::span<const char>(record.data(), record.size())));
    }
  }
  // Snapshot before finish(): the final merge consumes (and forgets) the
  // spilled runs, so runs_spilled() is back to 0 afterwards.
  *spill_runs = sorter.runs_spilled();
  std::string out;
  SUPMR_ASSIGN_OR_RETURN(
      merge::MergeStats stats,
      sorter.finish([&out](std::span<const char> slab) {
        out.append(slab.data(), slab.size());
        return Status::Ok();
      }));
  (void)stats;
  return out;
}

}  // namespace

StatusOr<ClusterResult> run_cluster(const ClusterJob& job) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t N = job.config.num_nodes;
  if (N == 0) {
    return Status::InvalidArgument("cluster: nodes must be >= 1");
  }
  if (!job.make_app) {
    return Status::InvalidArgument("cluster: application factory is empty");
  }
  if (job.format == nullptr) {
    return Status::InvalidArgument("cluster: record format is null");
  }
  core::ShardKind shard;
  {
    std::unique_ptr<core::Application> probe = job.make_app();
    if (probe == nullptr) {
      return Status::InvalidArgument(
          "cluster: application factory returned null");
    }
    shard = probe->shard_kind();
  }
  if (shard == core::ShardKind::kNone) {
    return Status::InvalidArgument(
        "cluster: application declares no shard protocol");
  }
  if (shard == core::ShardKind::kFixedRecords && job.record_bytes == 0) {
    return Status::InvalidArgument(
        "cluster: fixed-record sharding needs record_bytes");
  }
  if (job.config.node_memory_budget > 0 && job.spill_dir.empty()) {
    return Status::InvalidArgument(
        "cluster: node_memory_budget needs a spill_dir");
  }

  SUPMR_ASSIGN_OR_RETURN(std::vector<std::string> slices,
                         slice_input(job, N));

  // The fabric: per-node NIC limiters, the optional shared uplink every
  // cross-node byte also crosses, and per-node ingest-disk limiters. A zero
  // rate leaves that leg unmodeled (infinite bandwidth).
  std::vector<std::shared_ptr<storage::RateLimiter>> nic(N);
  std::vector<std::shared_ptr<storage::RateLimiter>> disk(N);
  std::shared_ptr<storage::RateLimiter> uplink;
  if (job.config.node_link_bps > 0) {
    for (auto& limiter : nic) {
      limiter = std::make_shared<storage::RateLimiter>(job.config.node_link_bps);
    }
  }
  if (job.config.uplink_bps > 0) {
    uplink = std::make_shared<storage::RateLimiter>(job.config.uplink_bps);
  }
  if (job.config.node_disk_bps > 0) {
    for (auto& limiter : disk) {
      limiter = std::make_shared<storage::RateLimiter>(job.config.node_disk_bps);
    }
  }

  // Phase 1: every node runs its local MapReduceJob, concurrently — the
  // disk limiters only contend (and ingest only overlaps) if they do.
  std::vector<NodeRun> runs(N);
  std::vector<Status> node_status(N, Status::Ok());
  {
    std::vector<std::thread> threads;
    threads.reserve(N);
    for (std::size_t k = 0; k < N; ++k) {
      threads.emplace_back([&, k] {
        try {
          node_status[k] =
              run_node(job, std::move(slices[k]), disk[k], runs[k]);
        } catch (const std::exception& e) {
          node_status[k] =
              Status::Internal(std::string("cluster node threw: ") + e.what());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const Status& st : node_status) SUPMR_RETURN_IF_ERROR(st);

  // Phase 2: split each node's canonical into protocol records.
  std::vector<std::vector<std::string_view>> records(N);
  for (std::size_t k = 0; k < N; ++k) {
    if (shard == core::ShardKind::kFixedRecords) {
      SUPMR_ASSIGN_OR_RETURN(records[k],
                             split_fixed(runs[k].canonical, job.record_bytes));
    } else {
      SUPMR_ASSIGN_OR_RETURN(records[k], split_lines(runs[k].canonical));
    }
  }

  // Owner assignment. Keyed kinds sample splitters over ALL nodes' records
  // (merge::select_splitters — deterministic, so routing is independent of
  // scheduling) and node p owns key-range partition p; duplicate-heavy
  // samples may yield fewer cuts than nodes, leaving high-numbered nodes
  // ownerless. The aligned kind owns by line-index range instead.
  std::size_t P = N;
  std::vector<std::string_view> key_splitters;
  std::size_t aligned_lines = 0;
  if (shard == core::ShardKind::kAligned) {
    for (std::size_t k = 0; k < N; ++k) {
      if (records[k].empty()) continue;
      if (aligned_lines != 0 && records[k].size() != aligned_lines) {
        return Status::InvalidArgument(
            "cluster: aligned node outputs disagree on line count");
      }
      aligned_lines = records[k].size();
    }
  } else {
    std::vector<std::string_view> all;
    for (const auto& r : records) all.insert(all.end(), r.begin(), r.end());
    if (shard == core::ShardKind::kSortedKeys) {
      key_splitters = merge::select_splitters(
          std::span<const std::string_view>(all), N, SortedKeyLess{});
    } else {
      key_splitters = merge::select_splitters(
          std::span<const std::string_view>(all), N,
          std::less<std::string_view>{});
    }
    P = key_splitters.size() + 1;
  }

  // Phase 3: shuffle. Sender nodes bucket their records by owner
  // (merge::partition_of for keyed kinds, line-index ranges for aligned) and
  // charge every cross-node payload against sender NIC -> uplink -> receiver
  // NIC. inbox[owner][sender] has exactly one writer, so the concurrent
  // senders never race; routing itself is deterministic, so the schedule
  // cannot change placement.
  std::vector<std::vector<std::vector<std::string_view>>> inbox(
      P, std::vector<std::vector<std::string_view>>(N));
  {
    std::vector<std::thread> senders;
    senders.reserve(N);
    for (std::size_t s = 0; s < N; ++s) {
      senders.emplace_back([&, s] {
        std::vector<std::vector<std::string_view>> buckets(P);
        if (shard == core::ShardKind::kAligned) {
          for (std::size_t o = 0; o < P; ++o) {
            const std::size_t lo = o * aligned_lines / N;
            const std::size_t hi = (o + 1) * aligned_lines / N;
            if (records[s].empty() || lo >= hi) continue;
            buckets[o].assign(records[s].begin() + lo,
                              records[s].begin() + hi);
          }
        } else if (shard == core::ShardKind::kSortedKeys) {
          for (std::string_view rec : records[s]) {
            buckets[merge::partition_of(key_splitters, rec, SortedKeyLess{})]
                .push_back(rec);
          }
        } else {
          for (std::string_view rec : records[s]) {
            buckets[merge::partition_of(key_splitters, rec,
                                        std::less<std::string_view>{})]
                .push_back(rec);
          }
        }
        for (std::size_t o = 0; o < P; ++o) {
          const std::uint64_t bytes = run_bytes(buckets[o]);
          if (o == s) {
            runs[s].stats.local_bytes += bytes;
          } else if (bytes > 0) {
            if (nic[s] != nullptr) nic[s]->acquire(bytes);
            if (uplink != nullptr) uplink->acquire(bytes);
            if (o < N && nic[o] != nullptr) nic[o]->acquire(bytes);
            runs[s].stats.sent_bytes += bytes;
          }
          inbox[o][s] = std::move(buckets[o]);
        }
      });
    }
    for (auto& t : senders) t.join();
  }
  for (std::size_t o = 0; o < P; ++o) {
    for (std::size_t s = 0; s < N; ++s) {
      if (o == s) continue;
      runs[o].stats.recv_bytes += run_bytes(inbox[o][s]);
    }
  }

  // Phase 4: owner merges, one per partition, concurrently. Fixed-record
  // partitions over the node memory budget take the ExternalSorter spill
  // path; everything else merges in memory.
  std::vector<std::string> outputs(P);
  std::vector<Status> owner_status(P, Status::Ok());
  {
    std::vector<std::thread> owners;
    owners.reserve(P);
    for (std::size_t o = 0; o < P; ++o) {
      owners.emplace_back([&, o] {
        try {
          if (shard == core::ShardKind::kSortedKeys) {
            auto merged = merge_sorted_keys(inbox[o]);
            if (!merged.ok()) {
              owner_status[o] = merged.status();
              return;
            }
            outputs[o] = std::move(merged).value();
          } else if (shard == core::ShardKind::kAligned) {
            auto folded = fold_aligned(inbox[o]);
            if (!folded.ok()) {
              owner_status[o] = folded.status();
              return;
            }
            outputs[o] = std::move(folded).value();
          } else {
            std::uint64_t total = 0;
            for (const auto& run : inbox[o]) total += run_bytes(run);
            const std::uint64_t budget = job.config.node_memory_budget;
            if (budget > 0 && total > budget) {
              // P <= N always, so partition o's owner is node o.
              auto merged = external_merge_fixed(job, inbox[o],
                                                 &runs[o].stats.spill_runs);
              if (!merged.ok()) {
                owner_status[o] = merged.status();
                return;
              }
              outputs[o] = std::move(merged).value();
            } else {
              outputs[o] = merge_fixed_records(inbox[o]);
            }
          }
        } catch (const std::exception& e) {
          owner_status[o] = Status::Internal(
              std::string("cluster owner merge threw: ") + e.what());
        }
      });
    }
    for (auto& t : owners) t.join();
  }
  for (const Status& st : owner_status) SUPMR_RETURN_IF_ERROR(st);

  ClusterResult result;
  result.shard = shard;
  result.nodes.reserve(N);
  for (std::size_t k = 0; k < N; ++k) {
    result.map_output_bytes += runs[k].stats.map_output_bytes;
    result.shuffle_bytes += runs[k].stats.sent_bytes;
    result.local_bytes += runs[k].stats.local_bytes;
    result.nodes.push_back(std::move(runs[k].stats));
  }
  for (std::size_t o = 0; o < P; ++o) result.output += outputs[o];
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  SUPMR_COUNTER_ADD("cluster.shuffle_bytes", result.shuffle_bytes);
  SUPMR_COUNTER_ADD("cluster.local_bytes", result.local_bytes);
  SUPMR_GAUGE_SET("cluster.nodes", N);
  std::uint64_t recv_max = 0;
  std::uint64_t recv_min = ~std::uint64_t{0};
  for (const NodeStats& node : result.nodes) {
    const std::uint64_t owned = node.recv_bytes + node.local_bytes;
    recv_max = std::max(recv_max, owned);
    recv_min = std::min(recv_min, owned);
  }
  SUPMR_GAUGE_SET("cluster.node_recv_max_bytes", recv_max);
  SUPMR_GAUGE_SET("cluster.node_recv_min_bytes", recv_min);
  return result;
}

}  // namespace supmr::cluster
