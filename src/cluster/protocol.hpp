// Shuffle protocols: how per-node canonical outputs are split into records,
// routed across worker nodes, and reassembled into the global output.
//
// The cluster runtime (cluster_job.hpp) never looks inside an application's
// containers — it shuffles the app's *canonical output* (the byte encoding
// every app already defines for oracle conformance). Each ShardKind pins
// down the record grammar and the owner-side merge that makes the
// concatenation of owner outputs byte-identical to a sequential run:
//   kSortedKeys    "key\tu64\n" lines sorted by key, keys unique per run;
//                  equal keys across runs fold by summing the value.
//   kFixedRecords  fixed-width records in full-record memcmp order; equal
//                  records are byte-identical so tie order is immaterial.
//   kAligned       an input-independent dense line structure; the global
//                  output is the element-wise sum of per-node values.
// Everything here is a pure function over string views into the node
// canonicals — no I/O, no threads — so the error paths are unit-testable in
// isolation (tests/cluster_property_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace supmr::cluster {

// Splits newline-terminated lines; each view INCLUDES its trailing '\n'.
// Rejects a non-empty input whose last byte is not '\n'.
StatusOr<std::vector<std::string_view>> split_lines(std::string_view bytes);

// Splits fixed-width records. Rejects record_bytes == 0 and inputs that are
// not a whole number of records.
StatusOr<std::vector<std::string_view>> split_fixed(std::string_view bytes,
                                                    std::size_t record_bytes);

// Key of a sorted-keys/aligned line: the prefix up to the LAST tab (keys may
// themselves contain tabs; values never do). A line without a tab keys as
// the whole line minus its newline.
std::string_view line_key(std::string_view line);

// The decimal u64 between the last tab and the trailing newline.
StatusOr<std::uint64_t> line_value(std::string_view line);

// Orders sorted-keys lines by key only, so equal keys route to the same
// partition and fold at the owner.
struct SortedKeyLess {
  bool operator()(std::string_view a, std::string_view b) const {
    return line_key(a) < line_key(b);
  }
};

// K-way merge of per-sender runs of sorted-keys lines (each run sorted by
// key, keys unique within a run), folding equal keys across runs by summing
// their values.
StatusOr<std::string> merge_sorted_keys(
    const std::vector<std::vector<std::string_view>>& runs);

// K-way merge of per-sender runs of fixed-width records, each run already in
// full-record memcmp order. Ties break toward the lower run index; equal
// records are byte-identical, so the output bytes do not depend on it.
std::string merge_fixed_records(
    const std::vector<std::vector<std::string_view>>& runs);

// Element-wise fold of aligned line slices: every non-empty run must have
// the same line count and identical labels line by line; the output carries
// the shared labels with the summed values.
StatusOr<std::string> fold_aligned(
    const std::vector<std::vector<std::string_view>>& runs);

}  // namespace supmr::cluster
