#include "cluster/protocol.hpp"

#include <algorithm>

namespace supmr::cluster {

StatusOr<std::vector<std::string_view>> split_lines(std::string_view bytes) {
  std::vector<std::string_view> lines;
  if (bytes.empty()) return lines;
  if (bytes.back() != '\n') {
    return Status::InvalidArgument(
        "cluster: canonical output is not newline-terminated");
  }
  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t nl = bytes.find('\n', start);
    lines.push_back(bytes.substr(start, nl - start + 1));
    start = nl + 1;
  }
  return lines;
}

StatusOr<std::vector<std::string_view>> split_fixed(std::string_view bytes,
                                                    std::size_t record_bytes) {
  if (record_bytes == 0) {
    return Status::InvalidArgument("cluster: record_bytes must be >= 1");
  }
  if (bytes.size() % record_bytes != 0) {
    return Status::InvalidArgument(
        "cluster: canonical output is not a whole number of " +
        std::to_string(record_bytes) + "-byte records");
  }
  std::vector<std::string_view> records;
  records.reserve(bytes.size() / record_bytes);
  for (std::size_t off = 0; off < bytes.size(); off += record_bytes) {
    records.push_back(bytes.substr(off, record_bytes));
  }
  return records;
}

std::string_view line_key(std::string_view line) {
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  const std::size_t tab = line.rfind('\t');
  if (tab == std::string_view::npos) return line;
  return line.substr(0, tab);
}

StatusOr<std::uint64_t> line_value(std::string_view line) {
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  const std::size_t tab = line.rfind('\t');
  if (tab == std::string_view::npos) {
    return Status::InvalidArgument("cluster: line has no value field: \"" +
                                   std::string(line) + "\"");
  }
  const std::string_view digits = line.substr(tab + 1);
  if (digits.empty()) {
    return Status::InvalidArgument("cluster: empty value in line: \"" +
                                   std::string(line) + "\"");
  }
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("cluster: non-decimal value in line: \"" +
                                     std::string(line) + "\"");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

StatusOr<std::string> merge_sorted_keys(
    const std::vector<std::vector<std::string_view>>& runs) {
  std::string out;
  std::vector<std::size_t> heads(runs.size(), 0);
  while (true) {
    // Run counts are small (one per node), so a linear min scan beats a heap.
    std::string_view min_key;
    bool have = false;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (heads[r] >= runs[r].size()) continue;
      const std::string_view key = line_key(runs[r][heads[r]]);
      if (!have || key < min_key) {
        min_key = key;
        have = true;
      }
    }
    if (!have) return out;

    std::uint64_t sum = 0;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (heads[r] >= runs[r].size()) continue;
      const std::string_view line = runs[r][heads[r]];
      if (line_key(line) != min_key) continue;
      SUPMR_ASSIGN_OR_RETURN(const std::uint64_t v, line_value(line));
      sum += v;
      ++heads[r];
    }
    out.append(min_key);
    out += '\t';
    out += std::to_string(sum);
    out += '\n';
  }
}

std::string merge_fixed_records(
    const std::vector<std::vector<std::string_view>>& runs) {
  std::string out;
  std::vector<std::size_t> heads(runs.size(), 0);
  while (true) {
    std::size_t min_run = runs.size();
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (heads[r] >= runs[r].size()) continue;
      if (min_run == runs.size() ||
          runs[r][heads[r]] < runs[min_run][heads[min_run]]) {
        min_run = r;
      }
    }
    if (min_run == runs.size()) return out;
    out.append(runs[min_run][heads[min_run]]);
    ++heads[min_run];
  }
}

StatusOr<std::string> fold_aligned(
    const std::vector<std::vector<std::string_view>>& runs) {
  std::size_t lines = 0;
  bool have = false;
  for (const auto& run : runs) {
    if (run.empty()) continue;  // a node that owns no slice contributes 0
    if (have && run.size() != lines) {
      return Status::InvalidArgument(
          "cluster: aligned outputs disagree on line count (" +
          std::to_string(lines) + " vs " + std::to_string(run.size()) + ")");
    }
    lines = run.size();
    have = true;
  }
  std::string out;
  if (!have) return out;
  for (std::size_t i = 0; i < lines; ++i) {
    std::string_view label;
    bool labeled = false;
    std::uint64_t sum = 0;
    for (const auto& run : runs) {
      if (run.empty()) continue;
      const std::string_view key = line_key(run[i]);
      if (!labeled) {
        label = key;
        labeled = true;
      } else if (key != label) {
        return Status::InvalidArgument(
            "cluster: aligned outputs disagree on line " + std::to_string(i) +
            " label (\"" + std::string(label) + "\" vs \"" + std::string(key) +
            "\")");
      }
      SUPMR_ASSIGN_OR_RETURN(const std::uint64_t v, line_value(run[i]));
      sum += v;
    }
    out.append(label);
    out += '\t';
    out += std::to_string(sum);
    out += '\n';
  }
  return out;
}

}  // namespace supmr::cluster
