// Multi-tenant job runtime: one process, many concurrent MapReduceJobs on
// shared, leased resources (ROADMAP item 1, the "millions of users" story).
//
// The JobManager owns the process-wide worker ThreadPool, a shared
// ChunkBufferPool for every job's ingest pipeline, and a byte-denominated
// memory budget. Jobs enter through submit(), which performs admission
// control (validation, budget check, bounded queue) and returns a JobHandle
// immediately; a scheduler dispatches queued jobs in priority order
// (FIFO within a priority, no backfill — a large job at the head cannot be
// starved by small ones slipping past it) whenever leased resources free
// up. Each running job holds a ResourceLease — an RAII grant of thread
// slots and budget bytes that returns to the pool when the job finishes,
// whatever the outcome.
//
// The split mirrors YTsaurus's scheduler/controller design: the manager is
// the scheduler (admission, leases, ordering) while MapReduceJob stays the
// controller that knows how to run one job; the manager never reaches into
// job internals beyond attach_runtime(). Lease threads bound a job's map
// wave width (the config handed to the job is rewritten to the lease size)
// and act as admission weights; they are not a hard CPU partition — reduce
// and merge waves share the pool's workers with everyone else. Memory
// leases are admission accounting only.
//
// Drain ordering (also see docs/runtime.md): drain() (1) atomically stops
// admissions — later submits fail FailedPrecondition — then (2) lets the
// already-admitted queue schedule and every running job finish, then
// (3) joins all job driver threads. The destructor drains, then shuts the
// worker pool down. Shutdown therefore never drops a wave — the run_wave
// false path exists for code that bypasses the manager.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "core/job.hpp"
#include "core/job_config.hpp"
#include "graph/job_graph.hpp"
#include "ingest/chunk.hpp"
#include "ingest/source.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::runtime {

class JobManager;

// RAII grant of JobManager resources (thread slots + budget bytes). Held by
// the manager for a job's lifetime; returns the resources on destruction.
// Move-only.
class ResourceLease {
 public:
  ResourceLease() = default;
  ResourceLease(ResourceLease&& other) noexcept { *this = std::move(other); }
  ResourceLease& operator=(ResourceLease&& other) noexcept;
  ~ResourceLease() { release(); }

  ResourceLease(const ResourceLease&) = delete;
  ResourceLease& operator=(const ResourceLease&) = delete;

  bool active() const { return mgr_ != nullptr; }
  std::size_t threads() const { return threads_; }
  std::size_t memory_bytes() const { return memory_bytes_; }

  // Returns the resources early (idempotent; the destructor calls it).
  void release();

 private:
  friend class JobManager;
  ResourceLease(JobManager* mgr, std::size_t threads,
                std::size_t memory_bytes)
      : mgr_(mgr), threads_(threads), memory_bytes_(memory_bytes) {}

  JobManager* mgr_ = nullptr;
  std::size_t threads_ = 0;
  std::size_t memory_bytes_ = 0;
};

enum class JobState { kQueued, kRunning, kSucceeded, kFailed };

std::string_view job_state_name(JobState state);

// Shared view of one submitted job. Cheap to copy; outlives the manager's
// interest in the job, so callers can keep handles past drain().
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return shared_ != nullptr; }
  std::uint64_t id() const;
  const std::string& name() const;
  JobState state() const;

  // Blocks until the job reaches a terminal state; returns its result (or
  // the failure Status). Safe to call from several threads and repeatedly.
  StatusOr<core::JobResult> wait() const;

  // Seconds the job spent queued before dispatch (0 until running).
  double queue_wait_s() const;

 private:
  friend class JobManager;
  struct Shared;
  std::shared_ptr<Shared> shared_;
};

// One admission request. `app` and `source` must outlive the job (the
// manager runs the job asynchronously — keep them alive until
// handle.wait() returns or drain() completes).
struct JobRequest {
  core::Application* app = nullptr;
  const ingest::IngestSource* source = nullptr;
  core::JobConfig config;
  std::string name;

  // Higher dispatches first; ties dispatch in submission order.
  int priority = 0;
  // Thread slots to lease; 0 = max(config map, reduce threads). The leased
  // count replaces the config's map/reduce thread counts.
  std::size_t threads = 0;
  // Budget bytes to lease; 0 = kDefaultJobMemoryBytes.
  std::size_t memory_bytes = 0;
};

// One admission request for a whole JobGraph. The graph (and its root
// sources) must outlive the run — keep them alive until handle.wait()
// returns or drain() completes. The graph is admitted as a unit: once
// accepted, every stage it later submits is admitted even if the manager
// starts draining (an admitted graph is never cut in half).
struct GraphRequest {
  const graph::JobGraph* graph = nullptr;
  graph::GraphOptions options;
  std::string name;

  // Per-STAGE lease parameters, with the same semantics as JobRequest:
  // stages run one after another, each leasing and returning resources.
  int priority = 0;
  std::size_t threads = 0;
  std::size_t memory_bytes = 0;
};

// Shared view of one submitted graph. Cheap to copy; usable past drain().
class GraphHandle {
 public:
  GraphHandle() = default;

  bool valid() const { return shared_ != nullptr; }
  std::uint64_t id() const;
  const std::string& name() const;

  // Blocks until every stage finished (or one failed); returns the graph
  // result or the first failing stage's Status. Repeatable, thread-safe.
  StatusOr<graph::GraphResult> wait() const;

 private:
  friend class JobManager;
  struct Shared;
  std::shared_ptr<Shared> shared_;
};

class JobManager {
 public:
  static constexpr std::size_t kDefaultJobMemoryBytes = 64ull << 20;

  struct Options {
    // Workers in the shared pool; also the total leasable thread slots.
    std::size_t num_threads = core::JobConfig::default_threads();
    // Total leasable memory, bytes.
    std::size_t memory_budget_bytes = 1ull << 30;
    // Bounded admission queue: submits beyond this fail ResourceExhausted.
    std::size_t max_queued = 1024;
    // Shared ChunkBufferPool freelist cap. 0 = derived from the lease
    // geometry: every concurrent job needs at least one thread slot, so at
    // most num_threads pipelines run at once, each wanting
    // kBuffersPerPipeline warm buffers.
    std::size_t chunk_buffer_cap = 0;
  };

  JobManager();
  explicit JobManager(Options options);
  ~JobManager();  // drain(), then pool shutdown

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Admission. Fails without queueing when:
  //   * draining/drained            -> FailedPrecondition
  //   * app/source null             -> InvalidArgument
  //   * resolved thread lease == 0  -> InvalidArgument
  //   * thread lease > pool size    -> InvalidArgument (can never dispatch)
  //   * memory lease > total budget -> ResourceExhausted (can never fit)
  //   * admission queue full        -> ResourceExhausted
  StatusOr<JobHandle> submit(JobRequest request);

  // Admits a JobGraph: validates it (topo_order), then runs it on a driver
  // thread, submitting each stage through the normal admission path — so
  // every stage acquires a ResourceLease and competes with ordinary jobs.
  // Stage jobs are named "<graph>/<stage>". Fails with FailedPrecondition
  // when draining, InvalidArgument for a null or malformed graph.
  StatusOr<GraphHandle> submit_graph(GraphRequest request);

  // Stops admissions, runs the queue dry, waits for every running job and
  // graph, and joins the driver threads. Idempotent; the destructor calls
  // it. Graphs admitted before drain() run to completion: their remaining
  // stages bypass the admission stop.
  void drain();

  // Snapshot introspection (also exported as jobmgr.* gauges).
  std::size_t queue_depth() const;
  std::size_t running_graphs() const;
  std::size_t running_jobs() const;
  std::size_t threads_leased() const;
  std::size_t memory_leased_bytes() const;
  bool draining() const;

  const Options& options() const { return options_; }
  ThreadPool& pool() { return pool_; }
  ingest::ChunkBufferPool& chunk_buffers() { return buffers_; }

 private:
  friend class ResourceLease;

  struct Pending;
  struct GraphPending;

  // submit() minus the draining_ rejection when `from_graph` — stages of an
  // already-admitted graph are part of that admission.
  StatusOr<JobHandle> submit_impl(JobRequest request, bool from_graph);
  // Dispatches every queued job the free resources allow, in priority
  // order. Caller holds mu_.
  void maybe_dispatch_locked();
  // Joins driver threads whose jobs have finished. Caller holds mu_.
  void reap_drivers_locked();
  void run_job(std::shared_ptr<Pending> job);
  void run_graph_driver(std::shared_ptr<GraphPending> g);
  void return_resources(std::size_t threads, std::size_t memory_bytes);
  void update_gauges_locked();

  Options options_;
  ThreadPool pool_;
  ingest::ChunkBufferPool buffers_;

  mutable std::mutex mu_;
  std::condition_variable state_cv_;  // queue/running/driver transitions
  std::deque<std::shared_ptr<Pending>> queued_;
  std::vector<std::thread> drivers_;     // one per dispatched job, joinable
  std::vector<std::size_t> done_drivers_;  // indices into drivers_ to reap
  std::size_t running_ = 0;
  std::size_t graphs_running_ = 0;
  std::size_t threads_leased_ = 0;
  std::size_t memory_leased_ = 0;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
};

}  // namespace supmr::runtime
