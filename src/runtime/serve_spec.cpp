#include "runtime/serve_spec.hpp"

#include <cctype>

namespace supmr::runtime {
namespace {

// Minimal strict cursor over the serve-spec JSON shape. Like
// core/replay.cpp's SpecParser this is not a general JSON reader: it knows
// strings, unsigned/signed integers, one array ("jobs"), and captures the
// nested "spec" object verbatim for ReplaySpec::from_json.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  Status expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return err(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  StatusOr<std::string> parse_string() {
    SUPMR_RETURN_IF_ERROR(expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return err("dangling escape in string");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return err(std::string("unsupported escape \\") + esc);
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return err("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<std::int64_t> parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return err("expected integer");
    }
    return std::stoll(std::string(text_.substr(start, pos_ - start)));
  }

  // Captures one balanced {...} object verbatim, honoring strings (a brace
  // inside a quoted value must not count).
  StatusOr<std::string> capture_object() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '{') {
      return err("expected object");
    }
    const std::size_t start = pos_;
    int depth = 0;
    bool in_string = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (in_string) {
        if (c == '\\') {
          ++pos_;  // skip the escaped character too
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          ++pos_;
          return std::string(text_.substr(start, pos_ - start));
        }
      }
      ++pos_;
    }
    return err("unbalanced object");
  }

  Status err(const std::string& what) const {
    return Status::InvalidArgument("serve spec: " + what + " at byte " +
                                   std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

StatusOr<ServeJobSpec> parse_job(Cursor& cur) {
  ServeJobSpec job;
  bool has_spec = false;
  SUPMR_RETURN_IF_ERROR(cur.expect('{'));
  if (!cur.consume('}')) {
    while (true) {
      SUPMR_ASSIGN_OR_RETURN(std::string key, cur.parse_string());
      SUPMR_RETURN_IF_ERROR(cur.expect(':'));
      if (key == "name") {
        SUPMR_ASSIGN_OR_RETURN(job.name, cur.parse_string());
      } else if (key == "priority") {
        SUPMR_ASSIGN_OR_RETURN(std::int64_t v, cur.parse_int());
        job.priority = static_cast<int>(v);
      } else if (key == "threads" || key == "memory_bytes" ||
                 key == "repeat") {
        SUPMR_ASSIGN_OR_RETURN(std::int64_t v, cur.parse_int());
        if (v < 0) return cur.err("negative value for " + key);
        const auto u = static_cast<std::size_t>(v);
        if (key == "threads") job.threads = u;
        if (key == "memory_bytes") job.memory_bytes = u;
        if (key == "repeat") job.repeat = u;
      } else if (key == "spec") {
        SUPMR_ASSIGN_OR_RETURN(std::string raw, cur.capture_object());
        SUPMR_ASSIGN_OR_RETURN(job.spec, core::ReplaySpec::from_json(raw));
        has_spec = true;
      } else {
        return cur.err("unknown job key \"" + key + "\"");
      }
      if (cur.consume(',')) continue;
      SUPMR_RETURN_IF_ERROR(cur.expect('}'));
      break;
    }
  }
  if (!has_spec) return cur.err("job missing \"spec\"");
  if (job.repeat == 0) return cur.err("job repeat must be >= 1");
  return job;
}

}  // namespace

StatusOr<ServeSpec> parse_serve_spec(std::string_view text) {
  Cursor cur(text);
  ServeSpec spec;
  SUPMR_RETURN_IF_ERROR(cur.expect('{'));
  if (!cur.consume('}')) {
    while (true) {
      SUPMR_ASSIGN_OR_RETURN(std::string key, cur.parse_string());
      SUPMR_RETURN_IF_ERROR(cur.expect(':'));
      if (key == "pool_threads" || key == "memory_budget_bytes" ||
          key == "max_queued") {
        SUPMR_ASSIGN_OR_RETURN(std::int64_t v, cur.parse_int());
        if (v < 0) return cur.err("negative value for " + key);
        const auto u = static_cast<std::size_t>(v);
        if (key == "pool_threads") spec.pool_threads = u;
        if (key == "memory_budget_bytes") spec.memory_budget_bytes = u;
        if (key == "max_queued") spec.max_queued = u;
      } else if (key == "jobs") {
        SUPMR_RETURN_IF_ERROR(cur.expect('['));
        if (!cur.consume(']')) {
          while (true) {
            SUPMR_ASSIGN_OR_RETURN(ServeJobSpec job, parse_job(cur));
            spec.jobs.push_back(std::move(job));
            if (cur.consume(',')) continue;
            SUPMR_RETURN_IF_ERROR(cur.expect(']'));
            break;
          }
        }
      } else {
        return cur.err("unknown key \"" + key + "\"");
      }
      if (cur.consume(',')) continue;
      SUPMR_RETURN_IF_ERROR(cur.expect('}'));
      break;
    }
  }
  if (!cur.eof()) return cur.err("trailing content after spec");
  if (spec.jobs.empty()) return cur.err("no jobs");
  return spec;
}

}  // namespace supmr::runtime
