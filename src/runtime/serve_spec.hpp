// The `supmr serve --jobs <file.json>` workload description.
//
// A serve spec names the shared runtime's sizing (pool threads, memory
// budget, queue bound) and a list of jobs, each a lease request plus a full
// ReplaySpec (core/replay.hpp) describing the app, its seeded corpus, and
// the cell config — so a jobs file is self-contained: corpora regenerate
// deterministically, no external inputs. `repeat` submits the same job N
// times (workload mixes like "40 small greps" stay one line).
//
// Shape (docs/runtime.md has the full key table):
//   {
//     "pool_threads": 4,
//     "memory_budget_bytes": 268435456,
//     "max_queued": 64,
//     "jobs": [
//       {"name": "grep-small", "priority": 1, "threads": 2,
//        "memory_bytes": 8388608, "repeat": 3, "spec": { ...ReplaySpec... }}
//     ]
//   }
//
// The parser is strict like ReplaySpec::from_json: unknown keys are errors.
// The "spec" sub-object is captured verbatim (balanced-brace, string-aware)
// and handed to ReplaySpec::from_json, so the two grammars stay decoupled.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "core/replay.hpp"

namespace supmr::runtime {

struct ServeJobSpec {
  std::string name;             // "" = auto job-<id>
  int priority = 0;
  std::size_t threads = 0;      // 0 = from spec.threads
  std::size_t memory_bytes = 0; // 0 = JobManager default
  std::size_t repeat = 1;
  core::ReplaySpec spec;
};

struct ServeSpec {
  std::size_t pool_threads = 0;         // 0 = hardware default
  std::size_t memory_budget_bytes = 0;  // 0 = JobManager default
  std::size_t max_queued = 0;           // 0 = JobManager default
  std::vector<ServeJobSpec> jobs;
};

StatusOr<ServeSpec> parse_serve_spec(std::string_view text);

}  // namespace supmr::runtime
