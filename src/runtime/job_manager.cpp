#include "runtime/job_manager.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/logging.hpp"
#include "obs/macros.hpp"

namespace supmr::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

// ----------------------------------------------------------- ResourceLease

ResourceLease& ResourceLease::operator=(ResourceLease&& other) noexcept {
  if (this != &other) {
    release();
    mgr_ = other.mgr_;
    threads_ = other.threads_;
    memory_bytes_ = other.memory_bytes_;
    other.mgr_ = nullptr;
    other.threads_ = 0;
    other.memory_bytes_ = 0;
  }
  return *this;
}

void ResourceLease::release() {
  // Locks the manager's mutex — never call on an active lease while holding
  // it (the manager's internal paths disarm the lease directly instead).
  if (mgr_ == nullptr) return;
  JobManager* mgr = mgr_;
  mgr_ = nullptr;
  mgr->return_resources(threads_, memory_bytes_);
}

// --------------------------------------------------------------- JobHandle

struct JobHandle::Shared {
  std::uint64_t id = 0;
  std::string name;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  JobState state = JobState::kQueued;
  // StatusOr has no default constructor, hence the optional wrapper.
  std::optional<StatusOr<core::JobResult>> result;
  double queue_wait_s = 0.0;
};

std::uint64_t JobHandle::id() const { return shared_ ? shared_->id : 0; }

const std::string& JobHandle::name() const {
  static const std::string kEmpty;
  return shared_ ? shared_->name : kEmpty;
}

JobState JobHandle::state() const {
  if (!shared_) return JobState::kFailed;
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

StatusOr<core::JobResult> JobHandle::wait() const {
  if (!shared_) return Status::FailedPrecondition("empty JobHandle");
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [&] { return shared_->result.has_value(); });
  return *shared_->result;
}

double JobHandle::queue_wait_s() const {
  if (!shared_) return 0.0;
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->queue_wait_s;
}

// ------------------------------------------------------------- GraphHandle

struct GraphHandle::Shared {
  std::uint64_t id = 0;
  std::string name;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  std::optional<StatusOr<graph::GraphResult>> result;
};

std::uint64_t GraphHandle::id() const { return shared_ ? shared_->id : 0; }

const std::string& GraphHandle::name() const {
  static const std::string kEmpty;
  return shared_ ? shared_->name : kEmpty;
}

StatusOr<graph::GraphResult> GraphHandle::wait() const {
  if (!shared_) return Status::FailedPrecondition("empty GraphHandle");
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [&] { return shared_->result.has_value(); });
  return *shared_->result;
}

// -------------------------------------------------------------- JobManager

struct JobManager::Pending {
  JobRequest request;
  std::shared_ptr<JobHandle::Shared> shared;
  std::size_t lease_threads = 0;  // resolved at admission
  std::size_t lease_memory = 0;
  ResourceLease lease;  // granted at dispatch
  std::chrono::steady_clock::time_point submitted_at;
  std::size_t driver_index = 0;  // into drivers_, set at dispatch
};

JobManager::JobManager() : JobManager(Options{}) {}

JobManager::JobManager(Options options)
    : options_(options),
      pool_(std::max<std::size_t>(1, options.num_threads)),
      buffers_(options.chunk_buffer_cap != 0
                   ? options.chunk_buffer_cap
                   : std::max<std::size_t>(1, options.num_threads) *
                         ingest::ChunkBufferPool::kBuffersPerPipeline) {
  options_.num_threads = pool_.size();
}

struct JobManager::GraphPending {
  GraphRequest request;
  std::shared_ptr<GraphHandle::Shared> shared;
  std::size_t driver_index = 0;  // into drivers_, set at admission
};

JobManager::~JobManager() { drain(); }

StatusOr<JobHandle> JobManager::submit(JobRequest request) {
  return submit_impl(std::move(request), /*from_graph=*/false);
}

StatusOr<JobHandle> JobManager::submit_impl(JobRequest request,
                                            bool from_graph) {
  const std::size_t threads =
      request.threads != 0
          ? request.threads
          : std::max(request.config.num_map_threads,
                     request.config.num_reduce_threads);
  const std::size_t memory = request.memory_bytes != 0
                                 ? request.memory_bytes
                                 : kDefaultJobMemoryBytes;

  auto reject = [](Status st) {
    SUPMR_COUNTER_ADD("jobmgr.jobs_rejected", 1);
    return st;
  };
  if (request.app == nullptr || request.source == nullptr) {
    return reject(
        Status::InvalidArgument("submit: app and source are required"));
  }
  if (threads == 0) {
    return reject(Status::InvalidArgument(
        "submit: zero-thread lease (set request.threads or config threads)"));
  }
  if (threads > options_.num_threads) {
    return reject(Status::InvalidArgument(
        "submit: thread lease " + std::to_string(threads) +
        " exceeds pool size " + std::to_string(options_.num_threads)));
  }
  if (memory > options_.memory_budget_bytes) {
    return reject(Status::ResourceExhausted(
        "submit: memory lease " + std::to_string(memory) +
        " exceeds budget " + std::to_string(options_.memory_budget_bytes)));
  }

  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->lease_threads = threads;
  pending->lease_memory = memory;
  pending->shared = std::make_shared<JobHandle::Shared>();
  pending->submitted_at = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && !from_graph) {
      return reject(
          Status::FailedPrecondition("submit: JobManager is draining"));
    }
    if (queued_.size() >= options_.max_queued) {
      return reject(Status::ResourceExhausted(
          "submit: admission queue full (" +
          std::to_string(options_.max_queued) + " jobs)"));
    }
    pending->shared->id = next_id_++;
    pending->shared->name = pending->request.name.empty()
                                ? "job-" + std::to_string(pending->shared->id)
                                : pending->request.name;
    queued_.push_back(pending);
    SUPMR_COUNTER_ADD("jobmgr.jobs_submitted", 1);
    reap_drivers_locked();
    maybe_dispatch_locked();
  }

  JobHandle handle;
  handle.shared_ = pending->shared;
  return handle;
}

StatusOr<GraphHandle> JobManager::submit_graph(GraphRequest request) {
  if (request.graph == nullptr) {
    SUPMR_COUNTER_ADD("jobmgr.graphs_rejected", 1);
    return Status::InvalidArgument("submit_graph: graph is required");
  }
  {
    // Validate up front so a malformed graph is an admission error, not a
    // failure surfaced later through the handle.
    StatusOr<std::vector<std::size_t>> topo = request.graph->topo_order();
    if (!topo.ok()) {
      SUPMR_COUNTER_ADD("jobmgr.graphs_rejected", 1);
      return topo.status();
    }
  }
  if (request.threads > options_.num_threads) {
    SUPMR_COUNTER_ADD("jobmgr.graphs_rejected", 1);
    return Status::InvalidArgument(
        "submit_graph: stage thread lease " + std::to_string(request.threads) +
        " exceeds pool size " + std::to_string(options_.num_threads));
  }

  auto g = std::make_shared<GraphPending>();
  g->request = std::move(request);
  g->shared = std::make_shared<GraphHandle::Shared>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      SUPMR_COUNTER_ADD("jobmgr.graphs_rejected", 1);
      return Status::FailedPrecondition("submit_graph: JobManager is draining");
    }
    g->shared->id = next_id_++;
    g->shared->name = g->request.name.empty()
                          ? "graph-" + std::to_string(g->shared->id)
                          : g->request.name;
    ++graphs_running_;
    reap_drivers_locked();
    g->driver_index = drivers_.size();
    drivers_.emplace_back(&JobManager::run_graph_driver, this, g);
    SUPMR_COUNTER_ADD("jobmgr.graphs_submitted", 1);
  }

  GraphHandle handle;
  handle.shared_ = g->shared;
  return handle;
}

void JobManager::run_graph_driver(std::shared_ptr<GraphPending> g) {
  SUPMR_TRACE_THREAD_NAME("jobmgr.graph-driver");
  // Each stage goes through the ordinary admission path (lease, priority,
  // queue) as "<graph>/<stage>"; from_graph lets a stage of this admitted
  // graph in even after drain() stopped new admissions.
  graph::StageRunner runner =
      [&](std::size_t stage_idx, core::Application& app,
          const ingest::IngestSource& source,
          const core::JobConfig& cfg) -> StatusOr<core::JobResult> {
    const std::string& stage_name =
        g->request.graph->stage(stage_idx).options.name;
    JobRequest req;
    req.app = &app;
    req.source = &source;
    req.config = cfg;
    req.priority = g->request.priority;
    req.threads = g->request.threads;
    req.memory_bytes = g->request.memory_bytes;
    req.name = g->shared->name + "/" +
               (stage_name.empty() ? "stage-" + std::to_string(stage_idx)
                                   : stage_name);
    SUPMR_ASSIGN_OR_RETURN(JobHandle handle,
                           submit_impl(std::move(req), /*from_graph=*/true));
    return handle.wait();
  };

  StatusOr<graph::GraphResult> result =
      graph::run_graph(*g->request.graph, g->request.options, runner);
  const bool ok = result.ok();
  if (!ok) {
    SUPMR_LOG_WARN("jobmgr: graph %llu (%s) failed: %s",
                   static_cast<unsigned long long>(g->shared->id),
                   g->shared->name.c_str(),
                   result.status().to_string().c_str());
  }
  {
    std::lock_guard<std::mutex> lock(g->shared->mu);
    g->shared->result.emplace(std::move(result));
  }
  g->shared->cv.notify_all();
  if (ok) {
    SUPMR_COUNTER_ADD("jobmgr.graphs_completed", 1);
  } else {
    SUPMR_COUNTER_ADD("jobmgr.graphs_failed", 1);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --graphs_running_;
    done_drivers_.push_back(g->driver_index);
    update_gauges_locked();
  }
  state_cv_.notify_all();
}

void JobManager::maybe_dispatch_locked() {
  while (!queued_.empty()) {
    // Highest priority first; FIFO within a priority (stable earliest pick).
    std::size_t best = 0;
    for (std::size_t i = 1; i < queued_.size(); ++i) {
      if (queued_[i]->request.priority > queued_[best]->request.priority)
        best = i;
    }
    const std::size_t threads = queued_[best]->lease_threads;
    const std::size_t memory = queued_[best]->lease_memory;
    // No backfill past a job that does not fit: letting smaller jobs slip
    // by would starve wide jobs forever under steady load.
    if (threads_leased_ + threads > options_.num_threads ||
        memory_leased_ + memory > options_.memory_budget_bytes) {
      break;
    }
    std::shared_ptr<Pending> job = std::move(queued_[best]);
    queued_.erase(queued_.begin() +
                  static_cast<std::ptrdiff_t>(best));
    threads_leased_ += threads;
    memory_leased_ += memory;
    job->lease = ResourceLease(this, threads, memory);
    ++running_;
    job->driver_index = drivers_.size();
    drivers_.emplace_back(&JobManager::run_job, this, job);
    SUPMR_COUNTER_ADD("jobmgr.jobs_dispatched", 1);
  }
  update_gauges_locked();
}

void JobManager::run_job(std::shared_ptr<Pending> job) {
  SUPMR_TRACE_THREAD_NAME("jobmgr.driver");
  const double queue_wait_s = seconds_since(job->submitted_at);
  {
    std::lock_guard<std::mutex> lock(job->shared->mu);
    job->shared->state = JobState::kRunning;
    job->shared->queue_wait_s = queue_wait_s;
  }
  job->shared->cv.notify_all();
  SUPMR_HIST_OBSERVE("jobmgr.queue_wait_us", queue_wait_s * 1e6);

  // The lease is the job's thread allowance: it bounds the map wave width
  // (and the app's stripe count) regardless of what the caller's config
  // asked for.
  core::JobConfig cfg = job->request.config;
  cfg.num_map_threads = job->lease.threads();
  cfg.num_reduce_threads = job->lease.threads();

  const auto run_start = std::chrono::steady_clock::now();
  StatusOr<core::JobResult> result = [&]() -> StatusOr<core::JobResult> {
    try {
      core::MapReduceJob mr(*job->request.app, *job->request.source, cfg);
      mr.attach_runtime(pool_, &buffers_);
      return mr.run(cfg.mode);
    } catch (const std::exception& e) {
      // Tasks own their errors (CP), but container lifecycle misuse throws;
      // surface it as this job's failure, not the process's.
      return Status::Internal(std::string("job raised: ") + e.what());
    }
  }();
  SUPMR_HIST_OBSERVE("jobmgr.job_run_us", seconds_since(run_start) * 1e6);

  // Combining tables are job-private map-side state, so their footprint is
  // accounted against the job's memory lease after the fact (the table grows
  // with distinct keys, which nobody knows at admission). Exceeding the lease
  // is not an error — the bytes were real and the job already ran — but it is
  // the signal that the caller's request.memory_bytes was too small.
  if (result.ok() && result->combine.table_bytes != 0) {
    SUPMR_COUNTER_ADD("jobmgr.combining_table_bytes",
                      result->combine.table_bytes);
    if (result->combine.table_bytes > job->lease.memory_bytes()) {
      SUPMR_COUNTER_ADD("jobmgr.combining_lease_exceeded", 1);
      SUPMR_LOG_WARN(
          "jobmgr: job %llu (%s) combining table (%llu bytes) exceeded its "
          "memory lease (%llu bytes)",
          static_cast<unsigned long long>(job->shared->id),
          job->shared->name.c_str(),
          static_cast<unsigned long long>(result->combine.table_bytes),
          static_cast<unsigned long long>(job->lease.memory_bytes()));
    }
  }

  const bool ok = result.ok();
  if (!ok) {
    SUPMR_LOG_WARN("jobmgr: job %llu (%s) failed: %s",
                   static_cast<unsigned long long>(job->shared->id),
                   job->shared->name.c_str(),
                   result.status().to_string().c_str());
  }
  {
    std::lock_guard<std::mutex> lock(job->shared->mu);
    job->shared->state = ok ? JobState::kSucceeded : JobState::kFailed;
    job->shared->result.emplace(std::move(result));
  }
  job->shared->cv.notify_all();
  if (ok) {
    SUPMR_COUNTER_ADD("jobmgr.jobs_completed", 1);
  } else {
    SUPMR_COUNTER_ADD("jobmgr.jobs_failed", 1);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    done_drivers_.push_back(job->driver_index);
    // Return the lease inline (disarmed, not release() — that would retake
    // mu_) so the dispatch below already sees the freed resources.
    threads_leased_ -= job->lease.threads_;
    memory_leased_ -= job->lease.memory_bytes_;
    job->lease.mgr_ = nullptr;
    maybe_dispatch_locked();
  }
  state_cv_.notify_all();
}

void JobManager::return_resources(std::size_t threads,
                                  std::size_t memory_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads_leased_ -= threads;
    memory_leased_ -= memory_bytes;
    maybe_dispatch_locked();
  }
  state_cv_.notify_all();
}

void JobManager::reap_drivers_locked() {
  for (std::size_t index : done_drivers_) {
    if (drivers_[index].joinable()) drivers_[index].join();
  }
  done_drivers_.clear();
}

void JobManager::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  update_gauges_locked();
  // Graphs count too: an active graph driver keeps submitting stages (which
  // refill the queue), so the queue is only truly dry once no graph is left.
  state_cv_.wait(lock, [&] {
    return queued_.empty() && running_ == 0 && graphs_running_ == 0;
  });
  std::vector<std::thread> to_join;
  to_join.swap(drivers_);
  done_drivers_.clear();
  lock.unlock();
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
}

std::size_t JobManager::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_.size();
}
std::size_t JobManager::running_graphs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_running_;
}
std::size_t JobManager::running_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}
std::size_t JobManager::threads_leased() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_leased_;
}
std::size_t JobManager::memory_leased_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_leased_;
}
bool JobManager::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void JobManager::update_gauges_locked() {
  SUPMR_GAUGE_SET("jobmgr.queue_depth", queued_.size());
  SUPMR_GAUGE_SET("jobmgr.running", running_);
  SUPMR_GAUGE_SET("jobmgr.graphs_running", graphs_running_);
  SUPMR_GAUGE_SET("jobmgr.threads_leased", threads_leased_);
  SUPMR_GAUGE_SET("jobmgr.memory_leased_bytes", memory_leased_);
}

}  // namespace supmr::runtime
