#include "obs/metrics.hpp"

#include <bit>

#include "common/json.hpp"

namespace supmr::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

// Per-thread shard cache. A thread touching registries R1, R2, R1 in turn
// re-registers a fresh shard on each switch; the abandoned shard stays owned
// by its registry and keeps contributing its (now frozen) counts to
// snapshots, so aggregation stays exact.
struct TlsShardCache {
  std::uint64_t registry_id = 0;
  void* shard = nullptr;
};
thread_local TlsShardCache tls_shard;

}  // namespace

std::size_t histogram_bucket(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t width = std::bit_width(value);
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

std::uint64_t histogram_bucket_bound(std::size_t bucket) {
  if (bucket + 1 >= kHistogramBuckets) return UINT64_MAX;
  return std::uint64_t{1} << bucket;
}

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Shard* MetricsRegistry::this_thread_shard() {
  if (tls_shard.registry_id == id_)
    return static_cast<Shard*>(tls_shard.shard);
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  tls_shard.registry_id = id_;
  tls_shard.shard = shards_.back().get();
  return shards_.back().get();
}

CounterCell* MetricsRegistry::counter_cell(std::string_view name) {
  Shard* shard = this_thread_shard();
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->counters.find(name);
  if (it == shard->counters.end()) {
    it = shard->counters
             .emplace(std::string(name), std::make_unique<CounterCell>())
             .first;
  }
  return it->second.get();
}

HistogramCell* MetricsRegistry::histogram_cell(std::string_view name) {
  Shard* shard = this_thread_shard();
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->histograms.find(name);
  if (it == shard->histograms.end()) {
    it = shard->histograms
             .emplace(std::string(name), std::make_unique<HistogramCell>())
             .first;
  }
  return it->second.get();
}

GaugeCell* MetricsRegistry::gauge_cell(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<GaugeCell>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, cell] : shard->counters) {
      snap.counters[name] += cell->value.load(std::memory_order_relaxed);
    }
    for (const auto& [name, cell] : shard->histograms) {
      HistogramSnapshot& h = snap.histograms[name];
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        h.buckets[b] += cell->buckets[b].load(std::memory_order_relaxed);
      const std::uint64_t cell_count =
          cell->count.load(std::memory_order_relaxed);
      h.sum += cell->sum.load(std::memory_order_relaxed);
      const std::uint64_t cell_min = cell->min.load(std::memory_order_relaxed);
      const std::uint64_t cell_max = cell->max.load(std::memory_order_relaxed);
      if (cell_count > 0) {
        if (h.count == 0 || cell_min < h.min) h.min = cell_min;
        if (cell_max > h.max) h.max = cell_max;
      }
      h.count += cell_count;
    }
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges[name] = cell->value.load(std::memory_order_relaxed);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, cell] : shard->counters) {
      cell->value.store(0, std::memory_order_relaxed);
    }
    for (const auto& [name, cell] : shard->histograms) {
      for (auto& b : cell->buckets) b.store(0, std::memory_order_relaxed);
      cell->count.store(0, std::memory_order_relaxed);
      cell->sum.store(0, std::memory_order_relaxed);
      cell->min.store(UINT64_MAX, std::memory_order_relaxed);
      cell->max.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& [name, cell] : gauges_) {
    cell->value.store(0, std::memory_order_relaxed);
  }
}

void write_metrics(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snapshot.counters) w.kv(name, value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.count ? h.min : 0);
    w.kv("max", h.max);
    w.key("buckets");
    w.begin_array();
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) w.value(h.buckets[b]);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  write_metrics(w, snapshot);
  return w.str();
}

}  // namespace supmr::obs
