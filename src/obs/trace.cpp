#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/json.hpp"

namespace supmr::obs {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

struct TlsBufferCache {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlsBufferCache tls_buffer;

void write_event(JsonWriter& w, const TraceEvent& e, std::uint32_t tid) {
  w.begin_object();
  w.kv("name", e.name);
  w.kv("cat", e.cat);
  char ph[2] = {e.ph, '\0'};
  w.kv("ph", static_cast<const char*>(ph));
  w.kv("pid", std::uint64_t{1});
  w.kv("tid", std::uint64_t{tid});
  w.kv("ts", double(e.ts_ns) / 1000.0);
  if (e.ph == 'X') w.kv("dur", double(e.dur_ns) / 1000.0);
  if (e.ph == 'i') w.kv("s", "t");  // thread-scoped instant
  if (e.arg1_name != nullptr || e.arg2_name != nullptr) {
    w.key("args");
    w.begin_object();
    if (e.arg1_name != nullptr) w.kv(e.arg1_name, e.arg1);
    if (e.arg2_name != nullptr) w.kv(e.arg2_name, e.arg2);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t max_events_per_thread)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      max_events_per_thread_(max_events_per_thread),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::Buffer* TraceRecorder::this_thread_buffer() {
  if (tls_buffer.recorder_id == id_)
    return static_cast<Buffer*>(tls_buffer.buffer);
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size());
  tls_buffer.recorder_id = id_;
  tls_buffer.buffer = buffers_.back().get();
  return buffers_.back().get();
}

void TraceRecorder::record(const TraceEvent& event) {
  if (!enabled()) return;
  Buffer* buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() >= max_events_per_thread_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->events.push_back(event);
}

void TraceRecorder::instant(const char* cat, const char* name,
                            const char* arg_name, std::uint64_t arg) {
  if (!enabled()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ph = 'i';
  e.ts_ns = now_ns();
  e.arg1_name = arg_name;
  e.arg1 = arg;
  record(e);
}

void TraceRecorder::set_thread_name(std::string name) {
  Buffer* buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->thread_name = std::move(name);
}

std::string TraceRecorder::to_json() const {
  // Snapshot buffer contents so sorting happens outside the locks.
  struct Named {
    std::uint32_t tid;
    std::string name;
  };
  std::vector<Named> names;
  std::vector<std::pair<std::uint32_t, TraceEvent>> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      if (!buf->thread_name.empty())
        names.push_back({buf->tid, buf->thread_name});
      for (const TraceEvent& e : buf->events) events.emplace_back(buf->tid, e);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.ts_ns < b.second.ts_ns;
                   });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& n : names) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", std::uint64_t{n.tid});
    w.key("args");
    w.begin_object();
    w.kv("name", n.name);
    w.end_object();
    w.end_object();
  }
  for (const auto& [tid, e] : events) write_event(w, e, tid);
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

Status TraceRecorder::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create trace " + path);
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !ok)
    return Status::IoError("short write to trace " + path);
  return Status::Ok();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace supmr::obs
