// Compile-out-able instrumentation macro layer.
//
// All runtime instrumentation goes through these macros so a build with
// -DSUPMR_OBS=OFF (which defines SUPMR_OBS_DISABLED) compiles every site to
// nothing — zero instructions, zero data — while the default build pays:
//   * counters/histograms: one relaxed atomic RMW on a thread-private cell
//     (the cell pointer is cached in a static thread_local per call site);
//   * trace scopes: one relaxed load of the enabled flag when tracing is
//     off; two clock reads + one buffered append when on.
//
// Metric and span names must be string literals.
//
//   SUPMR_COUNTER_ADD("ingest.bytes", n);
//   SUPMR_HIST_OBSERVE("ingest.read_us", micros);
//   SUPMR_GAUGE_SET("ingest.adaptive.chunk_bytes", want);
//   SUPMR_TRACE_SCOPE("merge", "merge.pway");           // span = this block
//   SUPMR_TRACE_SCOPE_VAR(span, "ingest", "read_chunk");  // named handle
//   SUPMR_TRACE_SET_ARG(span, "bytes", chunk.size());
//   SUPMR_TRACE_INSTANT("spill", "spill.run");
//   SUPMR_TRACE_THREAD_NAME("pool.worker/" + std::to_string(i));
#pragma once

#if !defined(SUPMR_OBS_DISABLED)
#define SUPMR_OBS_ENABLED 1
#else
#define SUPMR_OBS_ENABLED 0
#endif

#if SUPMR_OBS_ENABLED

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define SUPMR_OBS_CONCAT_INNER(a, b) a##b
#define SUPMR_OBS_CONCAT(a, b) SUPMR_OBS_CONCAT_INNER(a, b)

#define SUPMR_COUNTER_ADD(name, delta)                                     \
  do {                                                                     \
    static thread_local ::supmr::obs::CounterCell* supmr_obs_cell =        \
        ::supmr::obs::MetricsRegistry::global().counter_cell(name);        \
    supmr_obs_cell->add(static_cast<std::uint64_t>(delta));                \
  } while (0)

#define SUPMR_HIST_OBSERVE(name, value)                                    \
  do {                                                                     \
    static thread_local ::supmr::obs::HistogramCell* supmr_obs_cell =      \
        ::supmr::obs::MetricsRegistry::global().histogram_cell(name);      \
    supmr_obs_cell->observe(static_cast<std::uint64_t>(value));            \
  } while (0)

#define SUPMR_GAUGE_SET(name, value)                                       \
  do {                                                                     \
    static ::supmr::obs::GaugeCell* supmr_obs_cell =                       \
        ::supmr::obs::MetricsRegistry::global().gauge_cell(name);          \
    supmr_obs_cell->set(static_cast<std::int64_t>(value));                 \
  } while (0)

// Span covering the rest of the enclosing block.
#define SUPMR_TRACE_SCOPE(cat, name)                                       \
  ::supmr::obs::TraceScope SUPMR_OBS_CONCAT(supmr_trace_scope_, __LINE__)( \
      cat, name)

// Span with a caller-visible handle, for SUPMR_TRACE_SET_ARG.
#define SUPMR_TRACE_SCOPE_VAR(var, cat, name)                              \
  ::supmr::obs::TraceScope var((cat), (name))
#define SUPMR_TRACE_SET_ARG(var, key, value)                               \
  (var).set_arg((key), static_cast<std::uint64_t>(value))
#define SUPMR_TRACE_SET_ARG2(var, key, value)                              \
  (var).set_arg2((key), static_cast<std::uint64_t>(value))

#define SUPMR_TRACE_INSTANT(cat, name)                                     \
  ::supmr::obs::TraceRecorder::global().instant((cat), (name))
#define SUPMR_TRACE_INSTANT_ARG(cat, name, key, value)                     \
  ::supmr::obs::TraceRecorder::global().instant(                           \
      (cat), (name), (key), static_cast<std::uint64_t>(value))

#define SUPMR_TRACE_THREAD_NAME(name)                                      \
  do {                                                                     \
    if (::supmr::obs::TraceRecorder::global().enabled())                   \
      ::supmr::obs::TraceRecorder::global().set_thread_name(name);         \
  } while (0)

#else  // SUPMR_OBS_ENABLED

// Disabled build: every site vanishes. Arguments are intentionally not
// evaluated; instrumentation must not carry side effects.
#define SUPMR_COUNTER_ADD(name, delta) do {} while (0)
#define SUPMR_HIST_OBSERVE(name, value) do {} while (0)
#define SUPMR_GAUGE_SET(name, value) do {} while (0)
#define SUPMR_TRACE_SCOPE(cat, name) do {} while (0)
#define SUPMR_TRACE_SCOPE_VAR(var, cat, name) do {} while (0)
#define SUPMR_TRACE_SET_ARG(var, key, value) do {} while (0)
#define SUPMR_TRACE_SET_ARG2(var, key, value) do {} while (0)
#define SUPMR_TRACE_INSTANT(cat, name) do {} while (0)
#define SUPMR_TRACE_INSTANT_ARG(cat, name, key, value) do {} while (0)
#define SUPMR_TRACE_THREAD_NAME(name) do {} while (0)

#endif  // SUPMR_OBS_ENABLED
