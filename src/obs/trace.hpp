// Trace-event recorder emitting Chrome-trace (chrome://tracing / Perfetto)
// JSON.
//
// Threads append to private buffers — no shared state on the record path
// beyond one relaxed load of the enabled flag and one uncontended per-buffer
// mutex (contended only while a snapshot is being taken). Buffers are owned
// by the recorder and survive thread exit, so emission after a job can still
// see every thread's events; clear() empties buffers in place and never
// invalidates a thread's cached buffer pointer.
//
// Event model (the subset of the Trace Event Format the runtime needs):
//   'X' complete events — a span with ts + dur (what TraceScope emits),
//   'i' instant events  — a point-in-time marker,
// plus per-thread 'M' thread_name metadata synthesized at emission time.
// Names and categories must be string literals (or otherwise outlive the
// recorder): events store the pointers, not copies.
//
// Timebase: steady_clock nanoseconds since the recorder's construction,
// emitted as fractional microseconds (the format's unit).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace supmr::obs {

struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char ph = 'X';              // 'X' or 'i'
  std::uint64_t ts_ns = 0;    // since recorder epoch
  std::uint64_t dur_ns = 0;   // 'X' only
  // Up to two numeric args, rendered into the event's "args" object.
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
};

class TraceRecorder {
 public:
  // `max_events_per_thread` bounds memory; past it events are dropped and
  // counted (dropped_events()).
  explicit TraceRecorder(std::size_t max_events_per_thread = 1 << 20);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // The process-wide recorder the SUPMR_TRACE_* macros use.
  static TraceRecorder& global();

  // Recording is off by default; everything below is a cheap no-op until
  // enable() (one relaxed load on the record path).
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Nanoseconds since the recorder epoch.
  std::uint64_t now_ns() const;

  // Appends to the calling thread's buffer (no-op when disabled).
  void record(const TraceEvent& event);

  // Convenience: an 'i' instant event stamped now.
  void instant(const char* cat, const char* name,
               const char* arg_name = nullptr, std::uint64_t arg = 0);

  // Names the calling thread in the emitted trace (thread_name metadata).
  void set_thread_name(std::string name);

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — metadata first, then all
  // events sorted by timestamp. Safe to call while threads record (the
  // result is a consistent prefix per thread).
  std::string to_json() const;
  Status write_json(const std::string& path) const;

  // Empties all buffers in place; thread buffer pointers stay valid.
  void clear();

  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> events;
  };

  Buffer* this_thread_buffer();

  const std::uint64_t id_;
  const std::size_t max_events_per_thread_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;  // guards buffers_
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

// RAII span: stamps construction time, emits one 'X' complete event on
// destruction. When the recorder is disabled at construction the scope is
// inert (no clock reads). Use set_arg()/set_arg2() for values only known
// mid-span (e.g. bytes read).
class TraceScope {
 public:
  TraceScope(const char* cat, const char* name,
             TraceRecorder& recorder = TraceRecorder::global())
      : recorder_(recorder), active_(recorder.enabled()) {
    if (!active_) return;
    event_.cat = cat;
    event_.name = name;
    event_.ts_ns = recorder.now_ns();
  }

  ~TraceScope() {
    if (!active_) return;
    event_.dur_ns = recorder_.now_ns() - event_.ts_ns;
    recorder_.record(event_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_arg(const char* name, std::uint64_t value) {
    event_.arg1_name = name;
    event_.arg1 = value;
  }
  void set_arg2(const char* name, std::uint64_t value) {
    event_.arg2_name = name;
    event_.arg2 = value;
  }

 private:
  TraceRecorder& recorder_;
  const bool active_;
  TraceEvent event_;
};

}  // namespace supmr::obs
