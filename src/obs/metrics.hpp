// Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.
//
// Design (per-thread sharding): every thread gets its own shard of cells, so
// the hot path — bump a counter, observe a latency — is a relaxed atomic
// store on a cache line no other thread writes. Cross-thread work happens
// only at two cold points: the first touch of a metric name on a thread
// (registers the cell under a mutex) and snapshot() (walks all shards and
// sums). Cells have stable addresses for the registry's lifetime, which lets
// call sites cache the cell pointer in a `static thread_local` (see
// obs/macros.hpp) and skip even the map lookup after first use.
//
// Counters are monotonic uint64 sums; gauges are process-global last-write
// int64 values (a gauge is a shared reading, so sharding would change its
// meaning); histograms use fixed base-2 buckets — bucket i counts values in
// [2^(i-1), 2^i) — sized for microsecond latencies up to ~35 minutes.
//
// Snapshots are relaxed and therefore approximate while writers run: each
// cell's value is atomically read, but the set of reads is not a consistent
// cut. That is the standard contract for monitoring counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace supmr {
class JsonWriter;
}

namespace supmr::obs {

inline constexpr std::size_t kHistogramBuckets = 32;

// Bucket index for a value: 0 for v == 0, otherwise bit_width(v) capped to
// the last bucket. Bucket i (1 <= i < 31) therefore spans [2^(i-1), 2^i);
// bucket 31 is the overflow bucket.
std::size_t histogram_bucket(std::uint64_t value);

// Exclusive upper bound of bucket i (2^i), or UINT64_MAX for the overflow
// bucket. Used by tests and downstream tooling to label buckets.
std::uint64_t histogram_bucket_bound(std::size_t bucket);

// One thread's slice of a counter. Single-writer (the owning thread);
// snapshot() reads it with relaxed loads from other threads.
struct CounterCell {
  std::atomic<std::uint64_t> value{0};
  void add(std::uint64_t delta) {
    value.fetch_add(delta, std::memory_order_relaxed);
  }
};

// Process-global gauge (not sharded: a gauge is one shared reading).
struct GaugeCell {
  std::atomic<std::int64_t> value{0};
  void set(std::int64_t v) { value.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value.fetch_add(delta, std::memory_order_relaxed);
  }
};

// One thread's slice of a histogram. Same single-writer discipline as
// CounterCell, so min/max can be updated with plain load+store.
struct HistogramCell {
  std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{UINT64_MAX};
  std::atomic<std::uint64_t> max{0};

  void observe(std::uint64_t v) {
    buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    if (v < min.load(std::memory_order_relaxed))
      min.store(v, std::memory_order_relaxed);
    if (v > max.load(std::memory_order_relaxed))
      max.store(v, std::memory_order_relaxed);
  }
};

struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  double mean() const { return count ? double(sum) / double(count) : 0.0; }
};

// Aggregated view across all shards. Ordered maps so JSON output is
// deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry the SUPMR_COUNTER_* macros use.
  static MetricsRegistry& global();

  // Returns the calling thread's cell for `name`, creating shard and cell on
  // first touch. The pointer is stable for the registry's lifetime (reset()
  // zeroes cells in place; it never frees them), so call sites may cache it.
  CounterCell* counter_cell(std::string_view name);
  HistogramCell* histogram_cell(std::string_view name);
  GaugeCell* gauge_cell(std::string_view name);

  // Sums every shard's cells per name. Relaxed — see file comment.
  MetricsSnapshot snapshot() const;

  // Zeroes all cells in place; cached cell pointers stay valid.
  void reset();

 private:
  struct Shard {
    mutable std::mutex mu;  // guards the maps; cells themselves are atomic
    std::map<std::string, std::unique_ptr<CounterCell>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<HistogramCell>, std::less<>>
        histograms;
  };

  Shard* this_thread_shard();

  const std::uint64_t id_;  // disambiguates thread-local shard caching
  mutable std::mutex mu_;   // guards shards_ and gauges_
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, std::unique_ptr<GaugeCell>, std::less<>> gauges_;
};

// {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,"sum":..,
// "min":..,"max":..,"buckets":[32 counts]}}} — bucket i's bound is
// histogram_bucket_bound(i).
std::string metrics_to_json(const MetricsSnapshot& snapshot);

// Same object written into an enclosing document (report.cpp folds the
// snapshot into job_result_to_json with this).
void write_metrics(JsonWriter& w, const MetricsSnapshot& snapshot);

}  // namespace supmr::obs
