// Reference-runtime baseline: the sequential oracle (src/ref/) vs the
// parallel SupMR pipeline on the same seeded corpora. This is the honest
// floor for every speedup claim — the oracle has no pipeline, no p-way
// merge, no partitioning, one thread — and doubles as a sanity check that
// the two runtimes agree on result counts while disagreeing on time.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/tera_sort.hpp"
#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "ref/ref_job.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  double ref_s = 0;
  double sut_s = 0;
  std::uint64_t ref_bytes = 0;
  std::uint64_t ref_results = 0;
  std::uint64_t sut_results = 0;
};

core::JobConfig config(int threads) {
  core::JobConfig jc;
  jc.num_map_threads = threads;
  jc.num_reduce_threads = threads;
  jc.merge_mode = core::MergeMode::kPWay;
  return jc;
}

template <typename MakeApp>
Row run_pair(MakeApp make_app, const std::string& data,
             std::shared_ptr<ingest::RecordFormat> format, int threads,
             std::uint64_t chunk) {
  Row row;
  {
    auto dev = std::make_shared<storage::MemDevice>(data, "bench");
    ingest::SingleDeviceSource src(dev, format, /*chunk_bytes=*/0);
    auto app = make_app();
    const double t0 = now_s();
    auto r = ref::run_ref(*app, src);
    row.ref_s = now_s() - t0;
    if (r.ok()) {
      row.ref_bytes = r->canonical.size();
      row.ref_results = r->result_count;
    }
  }
  {
    auto dev = std::make_shared<storage::MemDevice>(data, "bench");
    ingest::SingleDeviceSource src(dev, format, chunk);
    auto app = make_app();
    core::MapReduceJob job(*app, src, config(threads));
    const double t0 = now_s();
    auto r = job.run(core::ExecMode::kIngestMR);
    row.sut_s = now_s() - t0;
    if (r.ok()) row.sut_results = r->result_count;
  }
  return row;
}

void print_pair(const char* label, const Row& row) {
  std::printf("%-12s ref %8.3fs  supmr %8.3fs  speedup %5.2fx  "
              "(oracle %llu bytes / %llu results, sut %llu results%s)\n",
              label, row.ref_s, row.sut_s,
              row.sut_s > 0 ? row.ref_s / row.sut_s : 0.0,
              (unsigned long long)row.ref_bytes,
              (unsigned long long)row.ref_results,
              (unsigned long long)row.sut_results,
              row.ref_results == row.sut_results ? "" : "  ** MISMATCH **");
}

}  // namespace

int main() {
  const int threads = 4;
  const std::uint64_t chunk = 4 * kMB;
  bench::print_banner(
      "ref_baseline: sequential reference runtime vs SupMR pipeline",
      "conformance oracle as bench floor (docs/testing.md)");
  std::printf("%d threads, %llu-byte chunks\n\n", threads,
              (unsigned long long)chunk);

  {
    wload::TextCorpusConfig cfg;
    cfg.total_bytes = 64 * kMB;
    cfg.seed = 42;
    const std::string text = wload::generate_text(cfg);
    Row row = run_pair([] { return std::make_unique<apps::WordCountApp>(); },
                       text, std::make_shared<ingest::LineFormat>(), threads,
                       chunk);
    print_pair("wordcount", row);
  }
  {
    wload::TeraGenConfig cfg;
    cfg.num_records = (32 * kMB) / 100;
    cfg.seed = 42;
    const std::string data = wload::teragen_to_string(cfg);
    Row row = run_pair(
        [] {
          return std::make_unique<apps::TeraSortApp>(apps::TeraSortOptions{});
        },
        data, std::make_shared<ingest::CrlfFormat>(), threads, chunk);
    print_pair("sort", row);
  }
  return 0;
}
