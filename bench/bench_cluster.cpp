// Scale-up vs scale-out (paper §VI.C.3, Fig. 7): one machine against a
// simulated N-node cluster on the SAME workload, with the bandwidths that
// decide the race modeled explicitly.
//
// The paper's argument is that a scale-up node with enough memory bandwidth
// beats a small cluster because the cluster pays the network for its shuffle.
// The counter-argument — the reason clusters exist — is aggregate ingest
// bandwidth: N nodes own N disks. This bench reproduces both regimes with
// the sharded-shuffle runtime (src/cluster/, docs/cluster.md):
//
//   fast fabric — per-node NICs at 1 GB/s, per-node ingest disks at 32 MB/s.
//                 Ingest dominates: N nodes drain their slices from N disks
//                 concurrently while the shuffle is nearly free, so
//                 scale-OUT wins and scale-up's single disk is the
//                 bottleneck (the HDFS-era deployment the paper pushes
//                 against).
//   slow fabric — the same disks behind 8 MB/s NICs. Now the cross-node
//                 shuffle (~ (N-1)/N of all map output) is the bottleneck:
//                 the 1-node "cluster" that never touches the wire wins,
//                 which is the paper's scale-up claim in miniature.
//
// Node counts {1, 2, 4} run in both regimes; every run's reassembled output
// is byte-checked against every other BEFORE any timing is reported, so the
// crossover is never quoted over diverging bytes. Iterations interleave
// regimes and node counts so cache/thermal drift hits all cells equally.
// The workload is TeraSort (fixed 100-byte records): map output equals
// input, making shuffled-byte accounting exact.
//
// Results go to stdout and — as the committed perf trajectory — to
// BENCH_cluster.json (override with --out=PATH).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/tera_sort.hpp"
#include "bench/bench_util.hpp"
#include "cluster/cluster_job.hpp"
#include "ingest/record_format.hpp"
#include "wload/teragen.hpp"

using namespace supmr;

namespace {

constexpr int kIters = 3;             // best-of to shed scheduler noise
constexpr std::uint64_t kRecords = 40000;  // 100B records -> 4 MB
constexpr std::size_t kRecordBytes = 100;
constexpr double kDiskBps = 32e6;     // per-node ingest disk
constexpr double kFastLinkBps = 1e9;  // shuffle nearly free
constexpr double kSlowLinkBps = 8e6;  // shuffle is the bottleneck

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  const char* regime;  // "fastlink" | "slowlink"
  double link_bps;
  std::size_t nodes;
  double best_s = 1e9;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t local_bytes = 0;
  std::string output;
};

Status time_once(const std::string& input, Cell& c) {
  cluster::ClusterJob job;
  job.input = input;
  job.format = std::make_shared<ingest::FixedFormat>(kRecordBytes);
  job.make_app = [] {
    apps::TeraSortOptions opt;
    opt.key_bytes = 10;
    opt.record_bytes = kRecordBytes;
    return std::unique_ptr<core::Application>(new apps::TeraSortApp(opt));
  };
  job.config.mode = core::ExecMode::kIngestMR;
  job.config.merge_mode = core::MergeMode::kPWay;
  job.config.num_map_threads = 2;
  job.config.num_reduce_threads = 2;
  job.config.num_nodes = c.nodes;
  job.config.node_link_bps = c.link_bps;
  job.config.node_disk_bps = kDiskBps;
  job.chunk_bytes = 64 * 1024;
  job.record_bytes = kRecordBytes;
  const double t0 = now_s();
  SUPMR_ASSIGN_OR_RETURN(cluster::ClusterResult run,
                         cluster::run_cluster(job));
  c.best_s = std::min(c.best_s, now_s() - t0);
  c.shuffle_bytes = run.shuffle_bytes;
  c.local_bytes = run.local_bytes;
  c.output = std::move(run.output);
  return Status::Ok();
}

Status run(const std::string& out_path) {
  bench::print_banner(
      "bench_cluster — scale-up vs scale-out on a simulated fabric",
      "SupMR paper §VI.C.3 Fig. 7 (docs/cluster.md)");
  bench::BenchJson json("cluster");

  wload::TeraGenConfig tg;
  tg.num_records = kRecords;
  tg.seed = 1701;
  const std::string input = wload::teragen_to_string(tg);

  std::vector<Cell> cells;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    cells.push_back({"fastlink", kFastLinkBps, n});
    cells.push_back({"slowlink", kSlowLinkBps, n});
  }
  for (int i = 0; i < kIters; ++i) {
    for (Cell& c : cells) SUPMR_RETURN_IF_ERROR(time_once(input, c));
  }
  // Byte-check across every regime x node-count cell: the crossover below
  // is a bandwidth story, never an output difference.
  for (const Cell& c : cells) {
    if (c.output != cells[0].output) {
      return Status::Internal(std::string("cluster output diverges at ") +
                              c.regime + " nodes=" +
                              std::to_string(c.nodes));
    }
  }

  double fast1 = 0, fastbest = 1e9, slow1 = 0, slowbest = 1e9;
  for (const Cell& c : cells) {
    const std::string name = std::string("cluster_") + c.regime + "_n" +
                             std::to_string(c.nodes);
    std::printf(
        "%-20s %.3fs  (%llu bytes shuffled cross-node, %llu stayed local)\n",
        name.c_str(), c.best_s, (unsigned long long)c.shuffle_bytes,
        (unsigned long long)c.local_bytes);
    json.metric(name, c.best_s, "s",
                std::to_string((unsigned long long)c.shuffle_bytes) +
                    " bytes shuffled cross-node, best of " +
                    std::to_string(kIters));
    const bool fast = std::strcmp(c.regime, "fastlink") == 0;
    if (c.nodes == 1) (fast ? fast1 : slow1) = c.best_s;
    if (fast) fastbest = std::min(fastbest, c.best_s);
    else slowbest = std::min(slowbest, c.best_s);
  }

  // The two headline ratios: on the fast fabric the cluster's aggregate
  // ingest disks beat the single node (> 1 means scale-out won); on the
  // slow fabric the single node that never shuffles holds the lead (the
  // best multi-node time never beats n1, so this ratio stays at 1 and the
  // per-cell rows show the multi-node cells losing).
  const double fast_scaleout_speedup = fast1 / fastbest;
  const double slow_scaleup_holds = slow1 <= slowbest ? 1.0 : 0.0;
  std::printf(
      "\nfast fabric: best cluster config is %.2fx vs 1 node "
      "(aggregate ingest disks win)\n",
      fast_scaleout_speedup);
  std::printf(
      "slow fabric: 1 node %s the lead (shuffle on an 8 MB/s fabric "
      "costs more than it buys)\n",
      slow_scaleup_holds == 1.0 ? "keeps" : "LOSES");
  json.metric("fast_fabric_scaleout_speedup", fast_scaleout_speedup, "x",
              "1-node time / best multi-node time at 1 GB/s NICs — "
              "scale-out wins on aggregate ingest bandwidth");
  json.metric("slow_fabric_scaleup_holds", slow_scaleup_holds, "bool",
              "1 when no multi-node config beats 1 node at 8 MB/s NICs — "
              "the paper's scale-up claim");

  if (!json.write(out_path)) {
    return Status::IoError("cannot write " + out_path);
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }
  const Status st = run(out);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_cluster: %s\n", st.to_string().c_str());
    return 1;
  }
  return 0;
}
