// Multi-tenant job mix: many small grep jobs + one large sort, through one
// JobManager (shared pool, shared chunk buffers, leases) versus the same
// jobs back-to-back with private resources.
//
// The mixed run is the ROADMAP "shared machine" story: small interactive
// jobs overlap the big batch job's ingest/merge stalls instead of waiting
// behind it, so total makespan drops even though the worker count is
// identical. Every job uses the same chunk size, so recycled buffers fit
// every pipeline; the shared ChunkBufferPool is primed to its cap before
// the measured runs and the bench HARD-FAILS (exit 1) if steady-state
// acquires miss the freelist — a non-zero miss delta means the
// lease-derived cap (num_threads x kBuffersPerPipeline) is undersized.
//
// Results go to stdout and — as the committed perf trajectory — to
// BENCH_jobmix.json (override with --out=PATH).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/grep.hpp"
#include "apps/tera_sort.hpp"
#include "bench/bench_util.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "runtime/job_manager.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

constexpr std::uint64_t kChunkBytes = 1 << 20;  // one size for every job
constexpr std::size_t kSmallJobs = 12;
constexpr std::uint64_t kGrepCorpusBytes = 4ull << 20;
constexpr std::uint64_t kSortRecords = 200000;  // 100B records -> 20MB

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Workload {
  std::vector<std::shared_ptr<const storage::Device>> grep_devices;
  std::shared_ptr<const storage::Device> sort_device;
};

Workload make_workload() {
  Workload w;
  for (std::size_t i = 0; i < kSmallJobs; ++i) {
    wload::TextCorpusConfig cfg;
    cfg.total_bytes = kGrepCorpusBytes;
    cfg.seed = 100 + i;
    w.grep_devices.push_back(std::make_shared<storage::MemDevice>(
        wload::generate_text(cfg), "grep-corpus-" + std::to_string(i)));
  }
  wload::TeraGenConfig tg;
  tg.num_records = kSortRecords;
  w.sort_device = std::make_shared<storage::MemDevice>(
      wload::teragen_to_string(tg), "sort-corpus");
  return w;
}

std::vector<std::string> grep_patterns() { return {"th", "he", "in", "er"}; }

// One job's apps/sources live exactly as long as its run, so each run
// (back-to-back or managed) builds fresh instances over the shared devices.
struct JobSet {
  std::vector<std::unique_ptr<apps::GrepApp>> grep_apps;
  std::vector<std::unique_ptr<ingest::SingleDeviceSource>> grep_sources;
  std::unique_ptr<apps::TeraSortApp> sort_app;
  std::unique_ptr<ingest::SingleDeviceSource> sort_source;
};

JobSet make_jobs(const Workload& w) {
  JobSet jobs;
  auto lines = std::make_shared<ingest::LineFormat>();
  for (const auto& dev : w.grep_devices) {
    jobs.grep_apps.push_back(
        std::make_unique<apps::GrepApp>(grep_patterns()));
    jobs.grep_sources.push_back(std::make_unique<ingest::SingleDeviceSource>(
        dev, lines, kChunkBytes));
  }
  apps::TeraSortOptions sort_opts;
  jobs.sort_app = std::make_unique<apps::TeraSortApp>(sort_opts);
  jobs.sort_source = std::make_unique<ingest::SingleDeviceSource>(
      w.sort_device,
      std::make_shared<ingest::FixedFormat>(sort_opts.record_bytes),
      kChunkBytes);
  return jobs;
}

core::JobConfig job_config(std::size_t threads) {
  core::JobConfig cfg;
  cfg.mode = core::ExecMode::kIngestMR;
  cfg.num_map_threads = threads;
  cfg.num_reduce_threads = threads;
  return cfg;
}

// The same jobs, one after another, each with its own pool and buffers —
// the pre-JobManager deployment model and the bench's baseline.
double run_back_to_back(const Workload& w, std::size_t threads) {
  JobSet jobs = make_jobs(w);
  const double t0 = now_s();
  for (std::size_t i = 0; i < kSmallJobs; ++i) {
    core::MapReduceJob job(*jobs.grep_apps[i], *jobs.grep_sources[i],
                           job_config(2));
    auto result = job.run(core::ExecMode::kIngestMR);
    if (!result.ok()) {
      std::fprintf(stderr, "grep job failed: %s\n",
                   result.status().to_string().c_str());
      std::exit(1);
    }
  }
  core::MapReduceJob sort(*jobs.sort_app, *jobs.sort_source,
                          job_config(threads));
  auto result = sort.run(core::ExecMode::kIngestMR);
  if (!result.ok()) {
    std::fprintf(stderr, "sort job failed: %s\n",
                 result.status().to_string().c_str());
    std::exit(1);
  }
  return now_s() - t0;
}

// The mix through one JobManager: the sort leases most of the pool at a
// higher priority, the greps fill the remaining slots and the sort's stalls.
double run_mixed(const Workload& w, runtime::JobManager& manager,
                 std::size_t sort_threads) {
  JobSet jobs = make_jobs(w);
  const double t0 = now_s();
  std::vector<runtime::JobHandle> handles;

  runtime::JobRequest sort_request;
  sort_request.app = jobs.sort_app.get();
  sort_request.source = jobs.sort_source.get();
  sort_request.config = job_config(sort_threads);
  sort_request.name = "sort-huge";
  sort_request.priority = 1;
  sort_request.memory_bytes = 64ull << 20;
  auto sort_handle = manager.submit(std::move(sort_request));
  if (!sort_handle.ok()) {
    std::fprintf(stderr, "submit sort: %s\n",
                 sort_handle.status().to_string().c_str());
    std::exit(1);
  }
  handles.push_back(*sort_handle);

  for (std::size_t i = 0; i < kSmallJobs; ++i) {
    runtime::JobRequest request;
    request.app = jobs.grep_apps[i].get();
    request.source = jobs.grep_sources[i].get();
    request.config = job_config(2);
    request.name = "grep-" + std::to_string(i);
    request.memory_bytes = 8ull << 20;
    auto handle = manager.submit(std::move(request));
    if (!handle.ok()) {
      std::fprintf(stderr, "submit grep-%zu: %s\n", i,
                   handle.status().to_string().c_str());
      std::exit(1);
    }
    handles.push_back(*handle);
  }
  for (const runtime::JobHandle& handle : handles) {
    auto result = handle.wait();
    if (!result.ok()) {
      std::fprintf(stderr, "job %s failed: %s\n", handle.name().c_str(),
                   result.status().to_string().c_str());
      std::exit(1);
    }
  }
  return now_s() - t0;
}

// Fills the shared freelist to its cap with chunk-sized buffers, so the
// measured runs start from the steady state the cap is sized for.
void prime_buffers(ingest::ChunkBufferPool& pool) {
  std::vector<std::vector<char>> held;
  for (std::size_t i = 0; i < pool.max_buffers(); ++i) {
    std::vector<char> buf = pool.acquire();
    buf.resize(kChunkBytes);
    held.push_back(std::move(buf));
  }
  for (auto& buf : held) pool.release(std::move(buf));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_jobmix.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  // Floor of 4: on narrow machines the mix still needs enough lease slots
  // for the sort and a couple of greps to genuinely overlap.
  const std::size_t threads =
      std::max<std::size_t>(core::JobConfig::default_threads(), 4);
  bench::print_banner(
      "jobmix: 12 small greps + 1 large sort, shared JobManager vs "
      "back-to-back",
      "multi-tenant scale-up MapReduce (ROADMAP shared-machine story)");
  std::printf("pool threads: %zu, chunk: %lluKB, sort: %lluMB, "
              "grep: %zux%lluMB\n\n",
              threads, (unsigned long long)(kChunkBytes >> 10),
              (unsigned long long)((kSortRecords * 100) >> 20), kSmallJobs,
              (unsigned long long)(kGrepCorpusBytes >> 20));

  Workload workload = make_workload();

  const double backtoback_s = run_back_to_back(workload, threads);
  std::printf("back-to-back (private pools): %.3fs\n", backtoback_s);

  runtime::JobManager::Options opts;
  opts.num_threads = threads;
  opts.memory_budget_bytes = 1ull << 30;
  runtime::JobManager manager(opts);
  const std::size_t sort_threads = threads > 1 ? threads - 1 : 1;
  prime_buffers(manager.chunk_buffers());

  const double warm_s = run_mixed(workload, manager, sort_threads);
  const std::uint64_t misses_after_warm = manager.chunk_buffers().misses();
  const double mixed_s = run_mixed(workload, manager, sort_threads);
  const std::uint64_t miss_delta =
      manager.chunk_buffers().misses() - misses_after_warm;
  manager.drain();

  std::printf("mixed (one JobManager):       %.3fs (warm-up run %.3fs)\n",
              mixed_s, warm_s);
  const double speedup = mixed_s > 0 ? backtoback_s / mixed_s : 0.0;
  const double jobs = static_cast<double>(kSmallJobs + 1);
  std::printf("makespan speedup: %.2fx   mixed throughput: %.2f jobs/s\n",
              speedup, jobs / mixed_s);
  std::printf("steady-state chunk-buffer misses: %llu (cap %llu)\n",
              (unsigned long long)miss_delta,
              (unsigned long long)manager.chunk_buffers().max_buffers());

  bench::BenchJson json("jobmix");
  json.metric("backtoback_wall", backtoback_s, "s",
              "12 greps then 1 sort, private pool+buffers per job");
  json.metric("mixed_wall", mixed_s, "s",
              "same jobs through one JobManager, steady-state run");
  json.metric("mixed_speedup", speedup, "x",
              "back-to-back makespan over mixed makespan");
  json.metric("mixed_throughput", jobs / mixed_s, "jobs/s", "");
  json.metric("steady_state_buffer_misses", static_cast<double>(miss_delta),
              "count", "shared ChunkBufferPool freelist misses; must be 0");
  if (!json.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", out_path.c_str());

  if (miss_delta != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state buffer allocation is not zero (%llu "
                 "misses) — lease-derived pool cap is undersized\n",
                 (unsigned long long)miss_delta);
    return 1;
  }
  return 0;
}
