// In-mapper combining ablation (docs/containers.md, ROADMAP item 2).
//
// Phoenix++'s core claim, measured end-to-end: folding duplicate keys at
// map-emit time shrinks the intermediate set by the key-duplication factor
// BEFORE it touches the reduce/merge phases. Three containers on the same
// seeded Zipf corpus:
//   raw       — bench-local no-fold baseline: every emit appended to a
//               per-thread log, folded only by a sort+fold in reduce (the
//               classic combiner-less shuffle)
//   default   — the app's stock HashContainer (folds, arena-keyed slots)
//   combining — CombiningContainer via --container=combining (folds, inline
//               keys + fold accounting)
// Reported: wall clock (best of N), and for the combining run the measured
// bytes-emitted -> bytes-into-merge reduction. Writes BENCH_combining.json
// (override with --out=PATH).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/pair_count.hpp"
#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "containers/hash.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "merge/introsort.hpp"
#include "merge/pway.hpp"
#include "storage/mem_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

constexpr std::uint64_t kCorpusBytes = 32ull << 20;
constexpr std::uint64_t kChunkBytes = 1024 * 1024;
constexpr int kRuns = 3;  // best-of; first run also warms the page cache
constexpr std::size_t kVocabulary = 150000;  // enough inserts to see the
                                             // probe-path difference

// Word count with NO emit-time fold: the shuffle a combiner-less runtime
// pays. Map appends every (word, 1) to the calling thread's log; reduce
// hash-partitions the concatenated logs and sort+folds each partition.
class RawWordCountApp final : public core::Application {
 public:
  using Result = std::pair<std::string, std::uint64_t>;

  void init(std::size_t num_map_threads) override {
    num_mappers_ = num_map_threads;
    logs_.assign(num_map_threads, {});
    results_.clear();
    partitions_.clear();
  }
  Status prepare_round(const ingest::IngestChunk& chunk) override {
    splits_ = apps::split_text(chunk.bytes(), num_mappers_);
    return Status::Ok();
  }
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override {
    auto& log = logs_[thread_id];
    apps::for_each_word(splits_[task], [&](std::string_view word) {
      log.emplace_back(word, 1);
      bytes_logged_[thread_id] += word.size() + sizeof(std::uint64_t);
    });
  }
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override {
    partitions_.assign(num_partitions, {});
    std::vector<std::function<void(std::size_t)>> tasks;
    for (std::size_t p = 0; p < num_partitions; ++p) {
      tasks.push_back([this, p, num_partitions](std::size_t) {
        auto& part = partitions_[p];
        for (const auto& log : logs_) {
          for (const auto& [word, one] : log) {
            if (containers::hash_bytes(word) % num_partitions == p)
              part.emplace_back(word, one);
          }
        }
        merge::introsort(part.begin(), part.end(),
                         [](const Result& a, const Result& b) {
                           return a.first < b.first;
                         });
        // Fold adjacent duplicates in place — the reduce-side combine the
        // map side refused to do.
        std::size_t out = 0;
        for (std::size_t i = 0; i < part.size();) {
          std::size_t j = i + 1;
          std::uint64_t sum = part[i].second;
          while (j < part.size() && part[j].first == part[i].first)
            sum += part[j++].second;
          part[out] = {std::move(part[i].first), sum};
          ++out;
          i = j;
        }
        part.resize(out);
      });
    }
    if (!pool.run_wave(tasks))
      return Status::Internal("reduce wave dropped: thread pool shut down");
    return Status::Ok();
  }
  Status merge(ThreadPool& pool, const core::MergePlan&,
               merge::MergeStats* stats) override {
    std::uint64_t total = 0;
    for (const auto& part : partitions_) total += part.size();
    results_.resize(total);
    std::vector<std::span<const Result>> runs;
    for (const auto& part : partitions_)
      runs.push_back(std::span<const Result>(part.data(), part.size()));
    merge::MergeStats local = merge::parallel_pway_merge(
        pool, std::move(runs), results_.data(),
        [](const Result& a, const Result& b) { return a.first < b.first; },
        0);
    partitions_.clear();
    if (stats != nullptr) *stats = std::move(local);
    return Status::Ok();
  }
  std::uint64_t result_count() const override { return results_.size(); }

  std::uint64_t bytes_logged() const {
    std::uint64_t b = 0;
    for (auto v : bytes_logged_) b += v;
    return b;
  }

 private:
  std::size_t num_mappers_ = 0;
  std::vector<std::span<const char>> splits_;
  std::vector<std::vector<Result>> logs_;
  std::vector<std::uint64_t> bytes_logged_ =
      std::vector<std::uint64_t>(64, 0);
  std::vector<std::vector<Result>> partitions_;
  std::vector<Result> results_;
};

struct RunResult {
  double wall_s = 0;
  std::uint64_t results = 0;
  core::CombineStats combine;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One fresh app instance per run (apps hold per-job container state).
RunResult run_once(core::Application& app, const storage::Device& device,
                   core::ContainerMode container, std::size_t threads) {
  core::JobConfig cfg;
  cfg.mode = core::ExecMode::kIngestMR;
  cfg.merge_mode = core::MergeMode::kPWay;
  cfg.num_map_threads = threads;
  cfg.num_reduce_threads = threads;
  cfg.container = container;
  auto status = app.use_container(container);
  if (!status.ok()) {
    std::fprintf(stderr, "use_container: %s\n", status.to_string().c_str());
    std::exit(1);
  }
  ingest::SingleDeviceSource source(
      std::shared_ptr<const storage::Device>(&device, [](const auto*) {}),
      std::make_shared<ingest::LineFormat>(), kChunkBytes);
  core::MapReduceJob job(app, source, cfg);
  const double t0 = now_s();
  auto result = job.run(cfg.mode);
  const double wall = now_s() - t0;
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().to_string().c_str());
    std::exit(1);
  }
  return {wall, result->result_count, result->combine};
}

template <typename App>
RunResult best_of(const storage::Device& device, core::ContainerMode mode,
                  std::size_t threads) {
  RunResult best;
  for (int i = 0; i < kRuns; ++i) {
    App app;
    RunResult r = run_once(app, device, mode, threads);
    if (i == 0 || r.wall_s < best.wall_s) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_combining.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  const std::size_t threads =
      std::max<std::size_t>(core::JobConfig::default_threads(), 2);

  bench::print_banner(
      "in-mapper combining: raw shuffle vs HashContainer vs "
      "CombiningContainer",
      "Phoenix++ combine-on-insert; SupMR intermediate-bandwidth bottleneck");

  wload::TextCorpusConfig corpus_cfg;
  corpus_cfg.total_bytes = kCorpusBytes;
  corpus_cfg.vocabulary = kVocabulary;
  corpus_cfg.seed = 41;
  const storage::MemDevice device(wload::generate_text(corpus_cfg),
                                  "zipf-text");
  std::printf("corpus: %.1f MB Zipf(%.1f) text, vocabulary %zu, "
              "threads %zu, best of %d\n\n",
              device.size() / 1048576.0, corpus_cfg.zipf_skew,
              corpus_cfg.vocabulary, threads, kRuns);

  bench::BenchJson json("combining");

  // --- word count: all three containers ---
  const RunResult raw =
      best_of<RawWordCountApp>(device, core::ContainerMode::kDefault, threads);
  const RunResult wc_default = best_of<apps::WordCountApp>(
      device, core::ContainerMode::kDefault, threads);
  const RunResult wc_combining = best_of<apps::WordCountApp>(
      device, core::ContainerMode::kCombining, threads);
  {
    // Bytes a combiner-less shuffle carries into merge = everything mapped.
    RawWordCountApp probe;
    const RunResult probe_run =
        run_once(probe, device, core::ContainerMode::kDefault, threads);
    (void)probe_run;
    const double raw_bytes = static_cast<double>(probe.bytes_logged());
    const double folded_bytes =
        static_cast<double>(wc_combining.combine.bytes_into_merge);
    const double fold_ratio =
        folded_bytes > 0 ? raw_bytes / folded_bytes : 0.0;
    std::printf("wordcount  raw        %.3fs  (%llu results)\n", raw.wall_s,
                (unsigned long long)raw.results);
    std::printf("wordcount  default    %.3fs\n", wc_default.wall_s);
    std::printf("wordcount  combining  %.3fs\n", wc_combining.wall_s);
    std::printf("  emit-time fold: %.1f MB emitted -> %.2f MB into merge "
                "(%.0fx reduction, %llu of %llu emits folded)\n\n",
                wc_combining.combine.bytes_emitted / 1048576.0,
                folded_bytes / 1048576.0,
                wc_combining.combine.bytes_emitted /
                    std::max(folded_bytes, 1.0),
                (unsigned long long)wc_combining.combine.keys_folded,
                (unsigned long long)wc_combining.combine.emits);

    json.metric("wordcount_raw_wall", raw.wall_s, "s",
                "no-fold per-thread logs + reduce-side sort-fold");
    json.metric("wordcount_default_wall", wc_default.wall_s, "s",
                "stock HashContainer (folds, arena keys)");
    json.metric("wordcount_combining_wall", wc_combining.wall_s, "s",
                "CombiningContainer (folds, inline keys)");
    json.metric("wordcount_bytes_emitted",
                static_cast<double>(wc_combining.combine.bytes_emitted), "B",
                "what a combiner-less shuffle would carry into merge");
    json.metric("wordcount_bytes_into_merge",
                static_cast<double>(wc_combining.combine.bytes_into_merge),
                "B", "what survives the emit-time fold");
    json.metric("wordcount_fold_ratio", fold_ratio, "x",
                "raw logged bytes over combining bytes-into-merge");
    json.metric("wordcount_speedup_vs_raw",
                wc_combining.wall_s > 0 ? raw.wall_s / wc_combining.wall_s
                                        : 0.0,
                "x", "");
    json.metric("wordcount_speedup_vs_default",
                wc_combining.wall_s > 0
                    ? wc_default.wall_s / wc_combining.wall_s
                    : 0.0,
                "x", "");
  }

  // --- pair count: bigram keys, larger key space, same story ---
  const RunResult pc_default = best_of<apps::PairCountApp>(
      device, core::ContainerMode::kDefault, threads);
  const RunResult pc_combining = best_of<apps::PairCountApp>(
      device, core::ContainerMode::kCombining, threads);
  {
    const double emitted =
        static_cast<double>(pc_combining.combine.bytes_emitted);
    const double folded =
        static_cast<double>(pc_combining.combine.bytes_into_merge);
    std::printf("paircount  default    %.3fs  (%llu results)\n",
                pc_default.wall_s, (unsigned long long)pc_default.results);
    std::printf("paircount  combining  %.3fs\n", pc_combining.wall_s);
    std::printf("  emit-time fold: %.1f MB emitted -> %.2f MB into merge "
                "(%.0fx reduction)\n",
                emitted / 1048576.0, folded / 1048576.0,
                emitted / std::max(folded, 1.0));
    json.metric("paircount_default_wall", pc_default.wall_s, "s", "");
    json.metric("paircount_combining_wall", pc_combining.wall_s, "s", "");
    json.metric("paircount_fold_ratio",
                folded > 0 ? emitted / folded : 0.0, "x",
                "bytes emitted over bytes into merge");
    json.metric("paircount_speedup_vs_default",
                pc_combining.wall_s > 0
                    ? pc_default.wall_s / pc_combining.wall_s
                    : 0.0,
                "x", "");
  }

  if (!json.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
