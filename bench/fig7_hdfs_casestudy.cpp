// Fig. 7: case study — word count ingesting 30 GB from a 32-node HDFS
// cluster behind one 1 Gb/s link. SupMR raises utilization during ingest but
// the speedup is small because the map phase is a tiny fraction of the
// link-bound job.
//
// Also runs a REAL wall-clock miniature through storage::HdfsSimStore to
// exercise the actual shared-link contention code path.
#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "perfmodel/experiments.hpp"
#include "storage/hdfs_sim.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

namespace {

void real_miniature() {
  // 8 MB over a 16 MB/s "link" across 8 sim nodes.
  storage::HdfsConfig hc;
  hc.num_nodes = 8;
  hc.block_bytes = 256 * 1024;
  hc.link_bps = 16.0e6;
  hc.per_node_bps = 100.0e6;
  storage::HdfsSimStore store(hc);
  wload::TextCorpusConfig tc;
  tc.total_bytes = 8 * kMB;
  store.put("/corpus/part-0", wload::generate_text(tc));

  auto dev = store.open("/corpus/part-0");
  if (!dev.ok()) {
    std::printf("hdfs open failed: %s\n", dev.status().to_string().c_str());
    return;
  }
  std::shared_ptr<const storage::Device> shared = std::move(*dev);
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(shared,
                                 std::make_shared<ingest::LineFormat>(),
                                 1 * kMB);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, jc);
  auto r = job.run(core::ExecMode::kIngestMR);
  if (!r.ok()) {
    std::printf("job failed: %s\n", r.status().to_string().c_str());
    return;
  }
  std::printf("\nreal miniature (8 MB over shared 16 MB/s hdfs-sim link):\n");
  std::printf("  read+map %.2fs (ingest-starved %.2fs, compute %.2fs), "
              "%llu chunks, %llu distinct words\n",
              r->phases.readmap_s, r->phases.read_s, r->phases.map_s,
              (unsigned long long)r->chunks,
              (unsigned long long)r->result_count);
}

}  // namespace

int main() {
  bench::print_banner(
      "Fig. 7 -- ingest chunks on HDFS behind one 1 Gb/s link (30 GB)",
      "SupMR paper, Fig. 7 + Section VI.C.3 (7 s speedup, high utilization)");

  auto fig = fig7_hdfs_casestudy();
  std::printf("%s\n", PhaseBreakdown::table_header().c_str());
  bench::print_row("original", fig.original.phases);
  bench::print_row("SupMR", fig.supmr.phases);
  std::printf("\nspeedup: %.1fs on a %.0fs job (paper: ~7s) -- Conclusion 4:\n"
              "the longer the ingest, the smaller the map phase relative to\n"
              "the job, the less overlap can help.\n",
              fig.speedup_s, fig.original.phases.total_s);
  std::printf("mean utilization: original %.1f%% -> SupMR %.1f%%\n",
              fig.original.mean_utilization, fig.supmr.mean_utilization);

  bench::print_trace("Fig. 7, SupMR on HDFS (utilization)", fig.supmr.trace);
  bench::dump_csv("fig7_hdfs_supmr", fig.supmr.trace);

  real_miniature();
  return 0;
}
