// Micro-benchmarks: external-memory structures (spilling sorter and
// spilling hash aggregation) across memory budgets.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "containers/spilling_hash.hpp"
#include "merge/external_sorter.hpp"
#include "tests/testdata.hpp"
#include "wload/teragen.hpp"

namespace supmr {
namespace {

void BM_ExternalSort(benchmark::State& state) {
  wload::TeraGenConfig cfg;
  cfg.num_records = 20000;  // 2 MB
  const std::string input = wload::teragen_to_string(cfg);
  ThreadPool pool(2);
  for (auto _ : state) {
    merge::ExternalSorterOptions opt;
    opt.memory_budget_bytes = state.range(0);
    opt.spill_dir = "/tmp";
    merge::ExternalSorter sorter(pool, opt);
    auto st = sorter.add(std::span<const char>(input.data(), input.size()));
    if (!st.ok()) {
      state.SkipWithError("add failed");
      return;
    }
    std::uint64_t bytes = 0;
    auto result = sorter.finish([&](std::span<const char> slab) {
      bytes += slab.size();
      return Status::Ok();
    });
    if (!result.ok() || bytes != input.size()) {
      state.SkipWithError("finish failed");
      return;
    }
  }
  state.SetBytesProcessed(state.iterations() * input.size());
  state.SetLabel("budget=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ExternalSort)
    ->Arg(64 << 10)    // ~32 spills
    ->Arg(512 << 10)   // ~4 spills
    ->Arg(4 << 20)     // in-memory
    ->Unit(benchmark::kMillisecond);

void BM_SpillingHashEmit(benchmark::State& state) {
  // Shared generators (tests/testdata.hpp): same Zipf mix as the container
  // microbenches and any differential test that replays it.
  const auto keys = testdata::key_pool(20000);
  std::vector<const std::string*> stream;
  for (std::size_t i : testdata::zipf_stream(1 << 15, 20000, 1))
    stream.push_back(&keys[i]);
  for (auto _ : state) {
    containers::SpillingHashContainer c;
    containers::SpillingHashContainer::Options opt;
    opt.memory_budget_bytes = state.range(0);
    opt.spill_dir = "/tmp";
    c.init(1, opt);
    for (const auto* k : stream) c.emit(0, *k, 1);
    auto st = c.maybe_spill();
    std::uint64_t n = 0;
    auto st2 = c.merge_reduce(
        [&](std::string_view, std::uint64_t) { ++n; });
    if (!st.ok() || !st2.ok() || n == 0) {
      state.SkipWithError("spill path failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
  state.SetLabel("budget=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SpillingHashEmit)
    ->Arg(128 << 10)
    ->Arg(16 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace supmr

BENCHMARK_MAIN();
