// Ablation: per-round thread lifecycle cost (paper §VI.C.1).
//
// The paper's runtime creates and destroys mapper threads every round; with
// small chunks this overhead becomes measurable ("more map/ingest rounds
// incur repetitive thread operations"). Real wall-clock comparison of pooled
// vs spawn-per-wave mapper execution across many tiny rounds.
#include <cstdio>

#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

double run(bool unpooled, const std::string& text, std::uint64_t chunk) {
  auto dev = std::make_shared<storage::MemDevice>(text, "corpus");
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(dev, std::make_shared<ingest::LineFormat>(),
                                 chunk);
  core::JobConfig jc;
  jc.num_map_threads = 8;
  jc.num_reduce_threads = 4;
  jc.unpooled_map_waves = unpooled;
  core::MapReduceJob job(app, src, jc);
  auto r = job.run(core::ExecMode::kIngestMR);
  if (!r.ok()) {
    std::printf("run failed: %s\n", r.status().to_string().c_str());
    return -1;
  }
  return r->phases.readmap_s;
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- per-round thread spawn/join overhead (real wall-clock)",
      "SupMR paper, Section VI.C.1 (thread overheads with small chunks)");

  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 8 * kMB;
  const std::string text = wload::generate_text(cfg);

  std::printf("  %10s %10s %14s %14s\n", "chunk", "rounds", "pooled",
              "spawn-per-wave");
  for (std::uint64_t chunk : {1 * kMB, 128 * kKB, 16 * kKB}) {
    const double pooled = run(false, text, chunk);
    const double unpooled = run(true, text, chunk);
    std::printf("  %10s %10llu %13.3fs %13.3fs  (+%.0f%%)\n",
                format_bytes(chunk).c_str(),
                (unsigned long long)(text.size() / chunk), pooled, unpooled,
                pooled > 0 ? (unpooled / pooled - 1.0) * 100.0 : 0.0);
  }
  std::printf("\nexpected shape: the gap widens as chunks shrink -- more\n"
              "rounds, more thread create/destroy churn.\n");
  return 0;
}
