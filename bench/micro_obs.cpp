// Micro-benchmarks: observability hot-path cost.
//
// The instrumentation macros must be cheap enough to leave in release
// builds: a counter add is one relaxed RMW on a thread-private cell, a
// histogram observe is a bit_width plus a handful of relaxed RMWs, and a
// trace scope with the recorder disabled is a single relaxed load. The
// baseline loop bounds what "zero" costs so the deltas are visible.
// Building with -DSUPMR_OBS=OFF compiles every macro out entirely; the
// obs-disabled numbers should then match the baseline exactly.
#include <benchmark/benchmark.h>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace supmr {
namespace {

void BM_Baseline(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Baseline);

void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    SUPMR_COUNTER_ADD("bench.counter", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistObserve(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    SUPMR_HIST_OBSERVE("bench.hist", v++ & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistObserve);

void BM_GaugeSet(benchmark::State& state) {
  std::int64_t v = 0;
  for (auto _ : state) {
    SUPMR_GAUGE_SET("bench.gauge", v++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_TraceScopeDisabled(benchmark::State& state) {
  obs::TraceRecorder::global().disable();
  for (auto _ : state) {
    SUPMR_TRACE_SCOPE("bench", "bench.scope");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
#if SUPMR_OBS_ENABLED
  obs::TraceRecorder::global().enable();
#endif
  for (auto _ : state) {
    SUPMR_TRACE_SCOPE("bench", "bench.scope");
    benchmark::ClobberMemory();
  }
#if SUPMR_OBS_ENABLED
  obs::TraceRecorder::global().disable();
  obs::TraceRecorder::global().clear();
#endif
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_SnapshotWhileCounting(benchmark::State& state) {
  SUPMR_COUNTER_ADD("bench.snapshot.counter", 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::MetricsRegistry::global().snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotWhileCounting);

}  // namespace
}  // namespace supmr

BENCHMARK_MAIN();
