// Ablation: merge fan-in sweep (paper §IV / Conclusion 3).
//
// Pairwise merge cost grows with log2(fan-in) — each extra doubling of runs
// adds a full re-scan of the data — while the p-way merge stays a single
// pass. The gap IS the paper's merge speedup, and it widens with fan-in
// ("the benefit of the sort modification depends on the number of merge
// rounds it avoids").
#include "bench/bench_util.hpp"
#include "merge/fway.hpp"
#include "perfmodel/experiments.hpp"
#include "tests/testdata.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

namespace {

// Real-mode twin: iterative f-way merge over 2M 8-byte keys, sweeping the
// fan-in from 2 (pairwise) to full width (p-way equivalent).
void real_fway_sweep() {
  std::printf("\nreal wall-clock f-way sweep (2M keys, 64 runs, 4 threads):\n");
  std::printf("  %6s %8s %12s\n", "fanin", "rounds", "merge time");
  const auto base = testdata::random_u64(2'000'000, 17);
  ThreadPool pool(4);
  for (std::size_t fanin : {2u, 4u, 8u, 64u}) {
    auto data = base;
    merge::MergeStats stats = merge::fway_merge_sort(
        pool, std::span<std::uint64_t>(data.data(), data.size()),
        std::less<std::uint64_t>{}, 64, fanin);
    double merge_s = 0.0;
    for (const auto& r : stats.rounds) merge_s += r.wall_s;
    std::printf("  %6zu %8zu %11.3fs\n", fanin, stats.num_rounds(), merge_s);
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- merge fan-in sweep (60 GB sort)",
      "SupMR paper, Section IV and Conclusion 3 (merge rounds avoided)");

  const auto d = wload::paper_sort_dataset();
  auto points = merge_fanin_sweep(sort_model(d), d, {2, 4, 8, 16, 32, 64, 128});
  std::printf("  %6s %14s %12s %10s\n", "runs", "pairwise", "p-way",
              "speedup");
  for (const auto& p : points) {
    std::printf("  %6zu %13.2fs %11.2fs %9.2fx\n", p.runs,
                p.pairwise_merge_s, p.pway_merge_s,
                p.pairwise_merge_s / p.pway_merge_s);
  }
  std::printf("\nexpected shape: pairwise grows ~log2(runs); p-way flat;\n"
              "at the paper's fan-in (64) the ratio lands near 3.1x.\n");
  real_fway_sweep();
  return 0;
}
