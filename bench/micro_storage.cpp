// Micro-benchmarks: storage substrate read paths (unthrottled logic cost).
#include <benchmark/benchmark.h>

#include "storage/hdfs_sim.hpp"
#include "storage/mem_device.hpp"
#include "storage/raid0_device.hpp"

namespace supmr::storage {
namespace {

void BM_MemDeviceRead(benchmark::State& state) {
  MemDevice dev(std::string(4 << 20, 'm'));
  std::vector<char> buf(state.range(0));
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto n = dev.read_at(off, std::span<char>(buf.data(), buf.size()));
    benchmark::DoNotOptimize(n);
    off = (off + buf.size()) % (dev.size() - buf.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemDeviceRead)->Arg(4 << 10)->Arg(256 << 10);

void BM_Raid0Read(benchmark::State& state) {
  std::vector<std::shared_ptr<const Device>> members;
  for (int i = 0; i < 3; ++i)
    members.push_back(
        std::make_shared<MemDevice>(std::string(2 << 20, 'a' + i), "m"));
  Raid0Device raid(members, 64 << 10);
  std::vector<char> buf(state.range(0));
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto n = raid.read_at(off, std::span<char>(buf.data(), buf.size()));
    benchmark::DoNotOptimize(n);
    off = (off + buf.size()) % (raid.size() - buf.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Raid0Read)->Arg(4 << 10)->Arg(256 << 10);

void BM_HdfsSimRead(benchmark::State& state) {
  HdfsConfig cfg;
  cfg.num_nodes = 32;
  cfg.block_bytes = 256 << 10;
  cfg.link_bps = 1e12;      // effectively unthrottled: measure logic cost
  cfg.per_node_bps = 1e12;
  HdfsSimStore store(cfg);
  store.put("/f", std::string(4 << 20, 'h'));
  auto dev = store.open("/f");
  if (!dev.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  std::vector<char> buf(state.range(0));
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto n = (*dev)->read_at(off, std::span<char>(buf.data(), buf.size()));
    benchmark::DoNotOptimize(n);
    off = (off + buf.size()) % ((*dev)->size() - buf.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HdfsSimRead)->Arg(64 << 10);

}  // namespace
}  // namespace supmr::storage

BENCHMARK_MAIN();
