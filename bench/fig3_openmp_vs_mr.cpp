// Fig. 3: the OpenMP-style sort computes faster than scale-up MapReduce but
// loses on total time because its ingest+parse is sequential.
//
// Runs twice: (a) paper scale via the calibrated simulation, and (b) a real
// wall-clock run at reduced scale through baseline::run_omp_style_sort vs
// the real SupMR runtime, to show the same geometry with actual threads.
#include "apps/tera_sort.hpp"
#include "baseline/omp_sort.hpp"
#include "bench/bench_util.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "perfmodel/experiments.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/teragen.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

namespace {

void paper_scale() {
  auto fig = fig3_openmp_vs_mapreduce();
  std::printf("paper-scale model (60 GB):\n");
  std::printf("  %-22s %10s %10s\n", "", "compute", "total");
  std::printf("  %-22s %9.2fs %9.2fs\n", "OpenMP-style sort",
              fig.openmp_compute_s, fig.openmp.total_s);
  std::printf("  %-22s %9.2fs %9.2fs\n", "MapReduce (original)",
              fig.mapreduce_compute_s, fig.mapreduce.phases.total_s);
  std::printf("  -> OpenMP compute is %.0fs FASTER, total is %.0fs SLOWER\n",
              fig.mapreduce_compute_s - fig.openmp_compute_s,
              fig.openmp.total_s - fig.mapreduce.phases.total_s);
  std::printf("     (paper: 214s faster compute, 192s slower total)\n\n");
}

void real_scale() {
  // 40 MB of TeraSort records behind a 40 MB/s throttle: the same shape in
  // real time. MapReduce parses in parallel map waves; OpenMP-style parses
  // on one thread.
  wload::TeraGenConfig cfg;
  cfg.num_records = 400000;
  auto base = std::make_shared<storage::MemDevice>(
      wload::teragen_to_string(cfg), "input");
  auto lim_a = std::make_shared<storage::RateLimiter>(40.0e6);
  auto lim_b = std::make_shared<storage::RateLimiter>(40.0e6);

  storage::ThrottledDevice omp_dev(base, lim_a);
  auto omp = baseline::run_omp_style_sort(
      omp_dev, baseline::OmpSortOptions{.num_threads = 4});

  auto mr_dev = std::make_shared<storage::ThrottledDevice>(base, lim_b);
  apps::TeraSortApp app;
  ingest::SingleDeviceSource src(mr_dev,
                                 std::make_shared<ingest::CrlfFormat>(),
                                 4 * kMB);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 4;
  core::MapReduceJob job(app, src, jc);
  auto mr = job.run(core::ExecMode::kIngestMR);

  if (!omp.ok() || !mr.ok()) {
    std::printf("real-scale run failed: %s %s\n",
                omp.status().to_string().c_str(),
                mr.status().to_string().c_str());
    return;
  }
  std::printf("real wall-clock run (40 MB @ 40 MB/s, 4 threads):\n");
  std::printf("  %-22s total %6.2fs  (read %5.2fs parse %5.2fs sort %5.2fs)\n",
              "OpenMP-style sort", omp->phases.total_s, omp->phases.read_s,
              omp->phases.map_s, omp->phases.merge_s);
  std::printf("  %-22s total %6.2fs  (read+map %5.2fs merge %5.2fs)\n",
              "SupMR run(kIngestMR)", mr->phases.total_s, mr->phases.readmap_s,
              mr->phases.merge_s);
}

}  // namespace

int main() {
  bench::print_banner(
      "Fig. 3 -- OpenMP sort vs scale-up MapReduce sort",
      "SupMR paper, Fig. 3 + Section II comparison");
  paper_scale();
  real_scale();
  return 0;
}
