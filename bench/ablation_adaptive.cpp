// Ablation: adaptive chunk sizing vs fixed chunk sizes (the paper's future
// work, implemented here). Real wall-clock: word count over a throttled
// device. The adaptive controller should land within a few percent of the
// best fixed size without being told the device speed or map cost.
#include <cstdio>

#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "core/job.hpp"
#include "ingest/adaptive.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

core::JobConfig config() {
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  return jc;
}

double run_fixed(const std::string& text, double bw, std::uint64_t chunk) {
  auto base = std::make_shared<storage::MemDevice>(text, "corpus");
  auto limiter = std::make_shared<storage::RateLimiter>(bw, 16 * 1024);
  auto dev = std::make_shared<storage::ThrottledDevice>(base, limiter);
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(dev, std::make_shared<ingest::LineFormat>(),
                                 chunk);
  core::MapReduceJob job(app, src, config());
  auto r = chunk == 0 ? job.run(core::ExecMode::kOriginal) : job.run(core::ExecMode::kIngestMR);
  return r.ok() ? r->phases.total_s : -1.0;
}

double run_adaptive(const std::string& text, double bw,
                    std::uint64_t* chunks_out) {
  auto base = std::make_shared<storage::MemDevice>(text, "corpus");
  auto limiter = std::make_shared<storage::RateLimiter>(bw, 16 * 1024);
  storage::ThrottledDevice dev(base.get(), limiter.get());
  apps::WordCountApp app;
  ingest::SingleDeviceSource unused(base,
                                    std::make_shared<ingest::LineFormat>(),
                                    0);
  ingest::LineFormat format;
  ingest::RateMatchingController::Options opt;
  opt.initial_bytes = 4 * kMB;  // deliberately far from optimal
  opt.min_bytes = 64 * kKiB;
  opt.max_bytes = 16 * kMB;
  opt.round_floor_s = 0.02;
  ingest::RateMatchingController controller(opt);
  core::MapReduceJob job(app, unused, config());
  job.set_adaptive(dev, format, controller);
  auto r = job.run(core::ExecMode::kAdaptive);
  if (!r.ok()) return -1.0;
  if (chunks_out) *chunks_out = r->chunks;
  return r->phases.total_s;
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- adaptive chunk sizing vs fixed (real wall-clock)",
      "SupMR paper, Sections III.A.2 and VIII (feedback loop, future work)");

  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 24 * kMB;
  const std::string text = wload::generate_text(cfg);
  const double bw = 48.0e6;

  std::printf("word count, %s @ %s:\n", format_bytes(text.size()).c_str(),
              format_rate(bw).c_str());
  double best_fixed = 1e9;
  for (std::uint64_t chunk :
       {std::uint64_t(0), 16 * kMB, 4 * kMB, 1 * kMB, 256 * kKiB}) {
    const double t = run_fixed(text, bw, chunk);
    best_fixed = chunk != 0 ? std::min(best_fixed, t) : best_fixed;
    std::printf("  fixed %9s  total %6.2fs\n",
                chunk == 0 ? "none" : format_bytes(chunk).c_str(), t);
  }
  std::uint64_t chunks = 0;
  const double adaptive = run_adaptive(text, bw, &chunks);
  std::printf("  adaptive        total %6.2fs  (%llu chunks; started at 4MB,"
              " converged by feedback)\n",
              adaptive, (unsigned long long)chunks);
  if (adaptive > 0) {
    std::printf("\n  adaptive vs best fixed: %+.1f%%\n",
                (adaptive / best_fixed - 1.0) * 100.0);
  }
  std::printf("expected shape: adaptive lands near the best fixed size with\n"
              "no tuning; 'none' is worst (no overlap).\n");
  return 0;
}
