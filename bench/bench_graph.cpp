// Chained MapReduce stage handoff: the pmi and msort JobGraphs with
// in-memory edges versus write-out-and-re-ingest (file) edges.
//
// This is the graph-shaped version of the paper's core claim: the classic
// multi-job pipeline writes each stage's output to disk and reads it back,
// so every interior edge pays the device bandwidth the paper spends its
// sections circumventing. In-memory handoff ships the same bytes as a
// MemDevice and pays nothing but the copy already made.
//
// Three variants per chain:
//   memory          — GraphHandoff::kMemory, edges stay in MemDevices.
//   file@pagecache  — GraphHandoff::kFile on this machine's filesystem. The
//                     spill files never leave the page cache, so this lower
//                     bound on file-handoff cost is mostly extra memcpys and
//                     sits within scheduler noise of `memory` on small edges.
//   file@hdd        — kFile with GraphOptions::spill_bps at the 128 MB/s
//                     single-HDD class from bench/ablation_disk_bw.cpp: the
//                     spill write and the re-ingest reads are charged
//                     against an emulated disk, which is what the edge
//                     actually costs once outputs no longer fit in cache.
// The headline speedup is memory vs file@hdd — the disk round trip is the
// structural cost the JobGraph exists to remove; the page-cache variant is
// reported alongside as the best case a file pipeline can hope for.
//
// All three paths run the SAME graph object (app factories produce fresh
// stage instances per run) and are byte-checked against each other before
// any timing is reported, so the speedup is never quoted over diverging
// outputs. Results go to stdout and — as the committed perf trajectory — to
// BENCH_graph.json (override with --out=PATH).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/chains.hpp"
#include "bench/bench_util.hpp"
#include "core/replay.hpp"
#include "graph/job_graph.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

constexpr int kIters = 3;     // best-of to shed scheduler noise
constexpr double kHddBps = 128e6;  // "1 HDD" class, ablation_disk_bw.cpp

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct HandoffResult {
  double best_s = 1e9;
  std::uint64_t handoff_bytes = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_files = 0;
  std::string output;
};

Status time_once(const graph::JobGraph& g, const graph::GraphOptions& opts,
                 HandoffResult& r) {
  const double t0 = now_s();
  SUPMR_ASSIGN_OR_RETURN(graph::GraphResult run, graph::run_graph(g, opts));
  r.best_s = std::min(r.best_s, now_s() - t0);
  r.handoff_bytes = run.handoff_bytes;
  r.spill_bytes = run.spill_bytes;
  r.spill_files = run.spill_files;
  r.output = std::move(run.final_output);
  return Status::Ok();
}

Status bench_chain(const core::ReplaySpec& spec, const apps::ChainInputs& in,
                   const char* label, bench::BenchJson& json) {
  SUPMR_ASSIGN_OR_RETURN(graph::JobGraph g, apps::make_chain(spec, in));
  graph::GraphOptions mem_opts;
  graph::GraphOptions file_opts;
  file_opts.handoff = core::GraphHandoff::kFile;
  graph::GraphOptions hdd_opts = file_opts;
  hdd_opts.spill_bps = kHddBps;
  // Interleave the variants so cache/thermal drift hits all equally (a
  // block of memory runs followed by a block of file runs reads as a
  // handoff effect when it is really the machine warming up).
  HandoffResult mem, file, hdd;
  for (int i = 0; i < kIters; ++i) {
    SUPMR_RETURN_IF_ERROR(time_once(g, mem_opts, mem));
    SUPMR_RETURN_IF_ERROR(time_once(g, file_opts, file));
    SUPMR_RETURN_IF_ERROR(time_once(g, hdd_opts, hdd));
  }
  if (mem.output != file.output || mem.output != hdd.output) {
    return Status::Internal(std::string(label) +
                            ": memory and file handoff outputs diverge");
  }
  const double speedup = hdd.best_s / mem.best_s;
  std::printf(
      "%-12s memory %.3fs | file@pagecache %.3fs | file@hdd %.3fs "
      "(%llu spill bytes, %llu files) | memory is %.2fx vs disk-class\n",
      label, mem.best_s, file.best_s, hdd.best_s,
      (unsigned long long)hdd.spill_bytes,
      (unsigned long long)hdd.spill_files, speedup);
  json.metric(std::string(label) + "_memory", mem.best_s, "s",
              std::to_string((unsigned long long)mem.handoff_bytes) +
                  " handoff bytes kept in memory");
  json.metric(std::string(label) + "_file_pagecache", file.best_s, "s",
              "kFile on the local filesystem; spill files stay page-cached");
  json.metric(std::string(label) + "_file_hdd", hdd.best_s, "s",
              std::to_string((unsigned long long)hdd.spill_bytes) +
                  " bytes written+re-ingested across " +
                  std::to_string((unsigned long long)hdd.spill_files) +
                  " spill file(s) at the emulated 128 MB/s HDD class");
  json.metric(std::string(label) + "_memory_speedup", speedup, "x",
              "file@hdd time / memory time, best of " +
                  std::to_string(kIters) +
                  " — the disk round trip in-memory handoff removes");
  return Status::Ok();
}

Status run(const std::string& out_path) {
  bench::print_banner(
      "bench_graph — chained-stage handoff: in-memory vs file edges",
      "SupMR scale-up thesis applied to multi-stage chains (docs/graphs.md)");
  bench::BenchJson json("graph");

  {
    // PMI: two text scans fan into a join whose input is the concatenated
    // wordcount + paircount tables (the interior edge is several MB).
    core::ReplaySpec spec;
    spec.app = "pmi";
    spec.corpus.bytes = 12ull << 20;
    spec.corpus.seed = 42;
    spec.threads = core::JobConfig::default_threads();
    spec.chunk_bytes = 1 << 20;
    wload::TextCorpusConfig cfg;
    cfg.total_bytes = spec.corpus.bytes;
    cfg.seed = spec.corpus.seed;
    apps::ChainInputs in;
    in.device = std::make_shared<storage::MemDevice>(
        wload::generate_text(cfg), "pmi-corpus");
    SUPMR_RETURN_IF_ERROR(bench_chain(spec, in, "graph_pmi", json));
  }
  {
    // msort: scatter routes records into key-prefix buckets, the sort stage
    // re-ingests the full routed dataset — the edge carries every byte.
    core::ReplaySpec spec;
    spec.app = "msort";
    spec.corpus.kind = "terasort";
    spec.threads = core::JobConfig::default_threads();
    spec.chunk_bytes = 1 << 20;
    wload::TeraGenConfig tg;
    tg.num_records = 300000;  // 100B records -> 30MB
    tg.seed = 7;
    apps::ChainInputs in;
    in.device = std::make_shared<storage::MemDevice>(
        wload::teragen_to_string(tg), "msort-corpus");
    SUPMR_RETURN_IF_ERROR(bench_chain(spec, in, "graph_msort", json));
  }

  if (!json.write(out_path)) {
    return Status::IoError("cannot write " + out_path);
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_graph.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }
  const Status st = run(out);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_graph: %s\n", st.to_string().c_str());
    return 1;
  }
  return 0;
}
