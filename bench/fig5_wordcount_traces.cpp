// Fig. 5 a/b/c: word count CPU utilization without ingest chunks, with 1 GB
// chunks (dense spikes), and with 50 GB chunks (sparse spikes).
#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

int main() {
  bench::print_banner(
      "Fig. 5 -- word count utilization vs ingest chunk size (155 GB)",
      "SupMR paper, Fig. 5a (none), 5b (1 GB), 5c (50 GB)");

  auto traces = fig5_wordcount_traces();
  for (const auto& [label, result] : traces) {
    std::printf("\nchunk=%s  total=%.2fs  mean CPU utilization=%.1f%%  "
                "map rounds=%llu  threads spawned=%llu\n",
                label.c_str(), result.phases.total_s,
                result.mean_utilization,
                (unsigned long long)result.map_rounds,
                (unsigned long long)result.threads_spawned);
    bench::print_trace(("Fig. 5, chunk=" + label).c_str(), result.trace);
    bench::dump_csv("fig5_wordcount_" + label, result.trace);
  }
  std::printf(
      "\nexpected shape: (a) long ingest trough + one compute spike;\n"
      "(b) dense spikes riding the ingest; (c) sparse well-defined spikes.\n");
  return 0;
}
