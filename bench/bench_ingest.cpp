// Ingest-path throughput: copying reads vs zero-copy mmap views.
//
// Generates a line-structured corpus on disk, then drives the ingest chunk
// pipeline end to end twice over the same file:
//   * --io=read : FileDevice, positional reads into pooled chunk buffers
//     (one full memory copy per chunk);
//   * --io=mmap : MmapDevice, borrowed std::span views (no copy — the map
//     side touches the page cache directly).
// The consumer scans every chunk byte (newline counting via scan.hpp), so
// both modes pay the same map-side work and the difference isolates the
// ingest copy. Also reports the SWAR-vs-bytewise chunk-scan rate, the other
// half of the "memory bandwidth bottleneck" the paper targets.
//
// Results go to stdout and — as the committed perf trajectory — to
// BENCH_ingest.json (override with --out=PATH).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "common/scan.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "storage/mmap_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

constexpr std::uint64_t kCorpusBytes = 64ull << 20;
constexpr std::uint64_t kChunkBytes = 1 << 20;
constexpr int kReps = 3;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double mbps(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? bytes / seconds / 1e6 : 0.0;
}

struct PipelineRates {
  double ingest_mbps = 0.0;    // producer-side read/borrow rate
  double pipeline_mbps = 0.0;  // end-to-end wall rate
};

// Best of kReps pipeline runs over `device`; the consumer counts newlines so
// every byte is touched exactly once on the map side.
PipelineRates run_pipeline(std::shared_ptr<const storage::Device> device,
                           core::IoMode io, const char* label) {
  ingest::SingleDeviceSource source(std::move(device),
                                    std::make_shared<ingest::LineFormat>(),
                                    kChunkBytes, io);
  double best_ingest = 1e9, best_total = 1e9;
  std::uint64_t bytes = 0, lines = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    ingest::IngestPipeline pipeline(source);
    lines = 0;
    auto stats = pipeline.run([&](ingest::IngestChunk& chunk) {
      const std::span<const char> data = chunk.bytes();
      std::size_t pos = 0;
      while (auto nl = scan::find_byte(data, pos, '\n')) {
        pos = *nl + 1;
        ++lines;
      }
      return Status::Ok();
    });
    if (!stats.ok()) {
      std::fprintf(stderr, "%s pipeline failed: %s\n", label,
                   stats.status().to_string().c_str());
      std::exit(1);
    }
    bytes = stats->total_bytes;
    best_ingest = std::min(best_ingest, stats->ingest_busy_s);
    best_total = std::min(best_total, stats->total_s);
  }
  PipelineRates rates{mbps(bytes, best_ingest), mbps(bytes, best_total)};
  std::printf("%-10s ingest %9.1f MB/s   end-to-end %9.1f MB/s   "
              "(%llu lines)\n",
              label, rates.ingest_mbps, rates.pipeline_mbps,
              (unsigned long long)lines);
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::print_banner("ingest throughput: copying reads vs zero-copy mmap",
                      "SupMR §III (ingest bottleneck), ROADMAP item 3");

  const std::string corpus_path = "bench_ingest_corpus.tmp";
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = kCorpusBytes;
  cfg.seed = 21;
  if (Status s = wload::generate_text_file(cfg, corpus_path); !s.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }

  bench::BenchJson json("ingest");

  {
    auto file = storage::FileDevice::open(corpus_path);
    if (!file.ok()) {
      std::fprintf(stderr, "%s\n", file.status().to_string().c_str());
      return 1;
    }
    auto mapped = storage::MmapDevice::open(corpus_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().to_string().c_str());
      return 1;
    }
    const PipelineRates read_rates =
        run_pipeline(std::move(*file), core::IoMode::kRead, "io=read");
    const PipelineRates mmap_rates =
        run_pipeline(std::move(*mapped), core::IoMode::kMmap, "io=mmap");
    const double ingest_speedup =
        read_rates.ingest_mbps > 0
            ? mmap_rates.ingest_mbps / read_rates.ingest_mbps
            : 0.0;
    std::printf("ingest-phase speedup (mmap/read): %.2fx\n", ingest_speedup);
    json.metric("ingest_read", read_rates.ingest_mbps, "MB/s",
                "FileDevice positional reads into pooled buffers, 1MB chunks");
    json.metric("ingest_mmap", mmap_rates.ingest_mbps, "MB/s",
                "MmapDevice borrowed views, 1MB chunks");
    json.metric("ingest_speedup", ingest_speedup, "x",
                "ingest-phase throughput, mmap vs copying reads");
    json.metric("pipeline_read", read_rates.pipeline_mbps, "MB/s",
                "end-to-end pipeline, newline-count consumer");
    json.metric("pipeline_mmap", mmap_rates.pipeline_mbps, "MB/s",
                "end-to-end pipeline, newline-count consumer");
  }

  {
    // Chunk scanning: SWAR find_record_end vs the bytewise loop it replaced.
    wload::TextCorpusConfig scan_cfg;
    scan_cfg.total_bytes = 8 << 20;
    scan_cfg.seed = 22;
    const std::string text = wload::generate_text(scan_cfg);
    const std::span<const char> data(text.data(), text.size());
    const ingest::LineFormat format;

    double best_swar = 1e9, best_byte = 1e9;
    std::uint64_t swar_lines = 0, byte_lines = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      double t0 = now_s();
      std::size_t pos = 0;
      swar_lines = 0;
      while (auto end = format.find_record_end(data, pos)) {
        pos = *end;
        ++swar_lines;
      }
      best_swar = std::min(best_swar, now_s() - t0);

      t0 = now_s();
      byte_lines = 0;
      for (char c : text) {
        if (c == '\n') ++byte_lines;
      }
      best_byte = std::min(best_byte, now_s() - t0);
    }
    if (swar_lines != byte_lines) {
      std::fprintf(stderr, "scan mismatch: %llu vs %llu lines\n",
                   (unsigned long long)swar_lines,
                   (unsigned long long)byte_lines);
      return 1;
    }
    const double swar_mbps = mbps(text.size(), best_swar);
    const double byte_mbps = mbps(text.size(), best_byte);
    std::printf("chunk scan: SWAR %9.1f MB/s   bytewise %9.1f MB/s\n",
                swar_mbps, byte_mbps);
    json.metric("scan_swar", swar_mbps, "MB/s",
                "LineFormat::find_record_end, 8-byte SWAR steps");
    json.metric("scan_bytewise", byte_mbps, "MB/s",
                "one branch per byte (the replaced idiom)");
  }

  std::remove(corpus_path.c_str());
  if (!json.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
