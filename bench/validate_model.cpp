// Cross-validation: does the discrete-event model predict the REAL runtime?
//
// The paper-scale numbers in EXPERIMENTS.md come from the calibrated model;
// this binary closes the loop at laptop scale. It measures this machine's
// primitives (throttled ingest bandwidth, word-count map cost), feeds them
// into the same SimJobSpec machinery used for the paper experiments, and
// compares the model's predicted totals against actual wall-clock runs of
// run(kOriginal) and run(kIngestMR).
#include <cstdio>
#include <thread>

#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "perfmodel/sim_job.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

constexpr double kBw = 32.0e6;
constexpr std::uint64_t kChunk = 1 * kMB;

core::JobConfig config() {
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  return jc;
}

double run_real(const std::string& text, bool chunked, double* map_wall) {
  auto base = std::make_shared<storage::MemDevice>(text, "corpus");
  auto limiter = std::make_shared<storage::RateLimiter>(kBw, 64 * 1024);
  auto dev = std::make_shared<storage::ThrottledDevice>(base, limiter);
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(dev, std::make_shared<ingest::LineFormat>(),
                                 chunked ? kChunk : 0);
  core::MapReduceJob job(app, src, config());
  auto r = chunked ? job.run(core::ExecMode::kIngestMR) : job.run(core::ExecMode::kOriginal);
  if (!r.ok()) return -1;
  if (map_wall != nullptr) *map_wall = r->phases.map_s;
  return r->phases.total_s;
}

}  // namespace

int main() {
  bench::print_banner(
      "Model validation -- sim predictions vs real wall-clock runs",
      "methodology check for the paper-scale reproduction (EXPERIMENTS.md)");

  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 16 * kMB;
  const std::string text = wload::generate_text(cfg);

  // Real runs (measure the original's map wall to calibrate the model).
  double map_wall = 0.0;
  const double real_original = run_real(text, false, &map_wall);
  const double real_supmr = run_real(text, true, nullptr);
  if (real_original < 0 || real_supmr < 0) {
    std::printf("real runs failed\n");
    return 1;
  }

  // Model with THIS machine's parameters: the host's contexts (the pool
  // oversubscribes them, which processor sharing models exactly), the
  // throttle bandwidth, and the measured map cost.
  const unsigned hw = std::thread::hardware_concurrency();
  perfmodel::SimJobSpec spec;
  spec.machine.contexts = int(hw == 0 ? 1 : hw);
  spec.machine.disk_bw_bps = kBw;
  spec.machine.thread_spawn_s = 2e-5;
  spec.machine.thread_join_s = 1e-5;
  spec.dataset.total_bytes = text.size();
  spec.app = perfmodel::AppModel{};
  // map cpu-seconds per byte: wall * contexts / bytes.
  spec.app.map_cpu_s_per_byte =
      map_wall * double(spec.machine.contexts) / double(text.size());
  spec.app.reduce_items = 10000;  // generator vocabulary
  spec.app.reduce_cpu_s_per_item = 1e-7;
  spec.app.merge_records = 10000;
  spec.app.merge_record_bytes = 16;
  spec.machine.mem_stream_bw_bps = 2e9;
  spec.num_mappers = config().num_map_threads;

  spec.chunk_bytes = 0;
  const double sim_original = perfmodel::simulate_job(spec).phases.total_s;
  spec.chunk_bytes = kChunk;
  const double sim_supmr = perfmodel::simulate_job(spec).phases.total_s;

  std::printf("16 MB word count @ 32 MB/s throttle, %d host context(s):\n\n",
              spec.machine.contexts);
  std::printf("  %-22s %10s %10s %8s\n", "", "real", "model", "error");
  std::printf("  %-22s %9.2fs %9.2fs %7.1f%%\n", "original run()",
              real_original, sim_original,
              (sim_original / real_original - 1.0) * 100.0);
  std::printf("  %-22s %9.2fs %9.2fs %7.1f%%\n", "SupMR run(kIngestMR)",
              real_supmr, sim_supmr,
              (sim_supmr / real_supmr - 1.0) * 100.0);
  std::printf("  %-22s %9.2fx %9.2fx\n", "speedup",
              real_original / real_supmr, sim_original / sim_supmr);
  std::printf("\nexpected shape: model totals within ~20%% of real runs and\n"
              "the same speedup ordering. The model assumes ideal overlap, so\n"
              "it under-predicts the pipelined run slightly on hosts with few\n"
              "contexts (allocator traffic and scheduler noise are unmodelled).\n");
  return 0;
}
