// Micro-benchmarks: intermediate container hot paths.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "containers/array_container.hpp"
#include "containers/combiners.hpp"
#include "containers/hash_container.hpp"
#include "tests/testdata.hpp"

namespace supmr::containers {
namespace {

std::vector<std::string> make_keys(std::size_t distinct) {
  std::vector<std::string> keys;
  keys.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i)
    keys.push_back("word" + std::to_string(i * 2654435761u % distinct));
  return keys;
}

void BM_ArenaMapInsert(benchmark::State& state) {
  const auto keys = make_keys(state.range(0));
  for (auto _ : state) {
    ArenaHashMap<std::uint64_t> m(1024);
    for (const auto& k : keys) m.find_or_insert(k, 0) += 1;
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_ArenaMapInsert)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_ArenaMapHitLookup(benchmark::State& state) {
  const auto keys = make_keys(1 << 14);
  ArenaHashMap<std::uint64_t> m(1 << 14);
  for (const auto& k : keys) m.find_or_insert(k, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaMapHitLookup);

void BM_HashContainerEmit_WordCountMix(benchmark::State& state) {
  // Zipf-weighted key mix, like real text: mostly combines, few inserts
  // (shared generator: tests/testdata.hpp).
  const auto keys = make_keys(10000);
  std::vector<const std::string*> stream;
  stream.reserve(1 << 16);
  for (std::size_t i : testdata::zipf_stream(1 << 16, 10000, 1))
    stream.push_back(&keys[i]);
  for (auto _ : state) {
    HashContainer<SumCombiner<std::uint64_t>> c;
    c.init(1, 1 << 14);
    for (const auto* k : stream) c.emit(0, *k, 1);
    benchmark::DoNotOptimize(c.raw_entries());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_HashContainerEmit_WordCountMix);

void BM_HashContainerReduce(benchmark::State& state) {
  HashContainer<SumCombiner<std::uint64_t>> c;
  const std::size_t stripes = 4;
  c.init(stripes, 1 << 12);
  const auto keys = make_keys(1 << 14);
  for (std::size_t s = 0; s < stripes; ++s)
    for (const auto& k : keys) c.emit(s, k, 1);
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < 16; ++p)
      total += c.reduce_partition(p, 16).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_HashContainerReduce);

void BM_ArrayContainerWrite(benchmark::State& state) {
  const std::uint64_t records = state.range(0);
  std::vector<char> record(100, 'r');
  for (auto _ : state) {
    ArrayContainer c;
    c.init(100, records);
    const std::uint64_t base = c.claim(records);
    for (std::uint64_t r = 0; r < records; ++r)
      c.write_record(base + r, std::span<const char>(record.data(), 100));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.SetBytesProcessed(state.iterations() * records * 100);
}
BENCHMARK(BM_ArrayContainerWrite)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace
}  // namespace supmr::containers

BENCHMARK_MAIN();
