// Table II (word count block): job phase breakdown at chunk sizes
// none / 1 GB / 50 GB on the 155 GB corpus, at paper scale via the
// calibrated simulation.
#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

int main() {
  bench::print_banner(
      "Table II -- Word Count: mitigate ingest bottleneck (155 GB)",
      "SupMR paper, Table II upper block; speedup claims in Section VI.B");

  std::printf("paper reference rows:\n");
  std::printf("  none  471.75s  read 403.90s  map 67.41s  reduce 0.03s  merge 0.01s\n");
  std::printf("  1GB   407.58s  [read+map 406.14s]        reduce 1.08s  merge 0.01s\n");
  std::printf("  50GB  429.76s  [read+map 423.51s]        reduce 0.08s  merge 0.01s\n\n");

  std::printf("measured (simulated at paper scale):\n%s\n",
              PhaseBreakdown::table_header().c_str());
  auto rows = table2_wordcount();
  for (const auto& row : rows) bench::print_row(row.label, row.result.phases);

  const double none = rows[0].result.phases.total_s;
  std::printf("\nspeedups over the original runtime:\n");
  for (std::size_t i = 1; i < rows.size(); ++i) {
    std::printf("  %-5s %.2fx  (paper: %s)\n", rows[i].label.c_str(),
                none / rows[i].result.phases.total_s,
                rows[i].label == "1GB" ? "1.16x" : "1.10x");
  }
  std::printf("\nmean CPU utilization: none %.1f%%  1GB %.1f%%  50GB %.1f%%\n",
              rows[0].result.mean_utilization,
              rows[1].result.mean_utilization,
              rows[2].result.mean_utilization);
  std::printf("map rounds: none %llu  1GB %llu  50GB %llu\n",
              (unsigned long long)rows[0].result.map_rounds,
              (unsigned long long)rows[1].result.map_rounds,
              (unsigned long long)rows[2].result.map_rounds);
  return 0;
}
