// Ablation: chunk size on a SHARED machine (paper §III.A.2).
//
// "Large chunks encourage a slow stream with low overall utilization, which
// may benefit a shared compute device where many other jobs are running."
// The paper never measures this; here we do, in real wall-clock: a
// foreground word-count job shares the machine and the storage channel with
// a latency-sensitive background job (small sorts in a loop). Sweeping the
// foreground chunk size trades its own finish time against the interference
// it inflicts on the background job.
#include <atomic>
#include <cstdio>
#include <thread>

#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "merge/sample_sort.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

struct SharedResult {
  double fg_total = 0.0;      // foreground job time
  double bg_p95_ms = 0.0;     // background task latency under interference
  double bg_tasks_per_s = 0.0;
};

SharedResult run_shared(const std::string& text, std::uint64_t chunk) {
  SharedResult out;
  // One storage channel shared by both jobs.
  auto limiter = std::make_shared<storage::RateLimiter>(64.0e6, 64 * 1024);
  auto fg_dev = std::make_shared<storage::ThrottledDevice>(
      std::make_shared<storage::MemDevice>(text, "fg"), limiter);

  std::atomic<bool> stop{false};
  Histogram bg_latency(0.0, 100.0, 200);  // ms
  std::atomic<std::uint64_t> bg_tasks{0};

  // Background job: repeated small in-core sorts (latency-sensitive).
  std::thread background([&] {
    Xoshiro256 rng(3);
    std::vector<std::uint64_t> work(20000);
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& x : work) x = rng();
      ThreadPool pool(2);
      const auto t0 = std::chrono::steady_clock::now();
      merge::parallel_sample_sort(
          pool, std::span<std::uint64_t>(work.data(), work.size()),
          std::less<std::uint64_t>{});
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      bg_latency.add(ms);
      bg_tasks.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Foreground: the paper's word-count job at the requested chunk size.
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(fg_dev,
                                 std::make_shared<ingest::LineFormat>(),
                                 chunk);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, jc);
  const auto t0 = std::chrono::steady_clock::now();
  auto r = chunk == 0 ? job.run(core::ExecMode::kOriginal) : job.run(core::ExecMode::kIngestMR);
  const double fg_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop.store(true);
  background.join();
  if (!r.ok()) {
    std::printf("foreground failed: %s\n", r.status().to_string().c_str());
    return out;
  }
  out.fg_total = fg_s;
  out.bg_p95_ms = bg_latency.percentile(95);
  out.bg_tasks_per_s = double(bg_tasks.load()) / fg_s;
  return out;
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- chunk size on a shared machine (real wall-clock)",
      "SupMR paper, Section III.A.2 (large chunks may benefit shared devices)");

  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 24 * kMB;
  const std::string text = wload::generate_text(cfg);

  std::printf("foreground: 24 MB word count @ shared 64 MB/s channel;\n");
  std::printf("background: latency-sensitive small sorts on the same cores\n\n");
  std::printf("  %10s %12s %16s %18s\n", "fg chunk", "fg total",
              "bg p95 latency", "bg tasks/s");
  for (std::uint64_t chunk : {std::uint64_t(0), 8 * kMB, 1 * kMB, 128 * kKiB}) {
    const SharedResult r = run_shared(text, chunk);
    std::printf("  %10s %11.2fs %14.1fms %17.1f\n",
                chunk == 0 ? "none" : format_bytes(chunk).c_str(), r.fg_total,
                r.bg_p95_ms, r.bg_tasks_per_s);
  }
  std::printf(
      "\nexpected shape: small chunks finish the foreground faster but raise\n"
      "its duty cycle, inflating background tail latency; 'none' and large\n"
      "chunks leave long idle ingest windows the background can use — the\n"
      "paper's availability argument quantified.\n");
  return 0;
}
