// Micro-benchmarks: chunk boundary scanning, split adjustment, planning, and
// workload generation throughput.
#include <benchmark/benchmark.h>

#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::ingest {
namespace {

void BM_LineScan(benchmark::State& state) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 1 << 20;
  const std::string text = wload::generate_text(cfg);
  LineFormat f;
  for (auto _ : state) {
    std::size_t pos = 0, lines = 0;
    while (true) {
      auto end = f.find_record_end(
          std::span<const char>(text.data(), text.size()), pos);
      if (!end) break;
      pos = *end;
      ++lines;
    }
    benchmark::DoNotOptimize(lines);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_LineScan);

// Bytewise reference for BM_LineScan: the one-branch-per-byte idiom the SWAR
// scanner (common/scan.hpp) replaced; kept as the comparison baseline.
void BM_LineScanBytewise(benchmark::State& state) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 1 << 20;
  const std::string text = wload::generate_text(cfg);
  for (auto _ : state) {
    std::size_t lines = 0;
    for (char c : text) {
      if (c == '\n') ++lines;
    }
    benchmark::DoNotOptimize(lines);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_LineScanBytewise);

void BM_CrlfScan(benchmark::State& state) {
  wload::TeraGenConfig cfg;
  cfg.num_records = 10000;
  const std::string data = wload::teragen_to_string(cfg);
  CrlfFormat f;
  for (auto _ : state) {
    std::size_t pos = 0, records = 0;
    while (true) {
      auto end = f.find_record_end(
          std::span<const char>(data.data(), data.size()), pos);
      if (!end) break;
      pos = *end;
      ++records;
    }
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_CrlfScan);

void BM_AdjustSplit(benchmark::State& state) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 4 << 20;
  auto dev = std::make_shared<storage::MemDevice>(wload::generate_text(cfg));
  LineFormat f;
  std::uint64_t desired = 1;
  for (auto _ : state) {
    auto split = f.adjust_split(*dev, desired);
    benchmark::DoNotOptimize(split);
    desired = (desired + 37117) % dev->size();
  }
}
BENCHMARK(BM_AdjustSplit);

void BM_PlanChunks(benchmark::State& state) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 4 << 20;
  auto dev = std::make_shared<storage::MemDevice>(wload::generate_text(cfg));
  SingleDeviceSource src(dev, std::make_shared<LineFormat>(),
                         state.range(0));
  for (auto _ : state) {
    auto plan = src.plan();
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel("chunk=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PlanChunks)->Arg(64 << 10)->Arg(1 << 20);

void BM_TeraGen(benchmark::State& state) {
  wload::TeraGenConfig cfg;
  cfg.num_records = state.range(0);
  for (auto _ : state) {
    auto data = wload::teragen_to_string(cfg);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * cfg.num_records * 100);
}
BENCHMARK(BM_TeraGen)->Arg(10000);

void BM_TextGen(benchmark::State& state) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = state.range(0);
  for (auto _ : state) {
    auto data = wload::generate_text(cfg);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextGen)->Arg(1 << 20);

}  // namespace
}  // namespace supmr::ingest

BENCHMARK_MAIN();
