// Table II (sort block): chunk none (pairwise merge) vs 1 GB (p-way merge)
// on the 60 GB TeraSort input, at paper scale via the calibrated simulation.
#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

int main() {
  bench::print_banner(
      "Table II -- Sort: mitigate merge bottleneck (60 GB)",
      "SupMR paper, Table II lower block; 1.46x total, 3.12x merge speedup");

  std::printf("paper reference rows:\n");
  std::printf("  none  397.31s  read 182.78s  map 6.33s  reduce 7.72s  merge 191.23s\n");
  std::printf("  1GB   272.58s  [read+map 196.86s]       reduce 9.04s  merge 61.14s\n\n");

  std::printf("measured (simulated at paper scale):\n%s\n",
              PhaseBreakdown::table_header().c_str());
  auto rows = table2_sort();
  for (const auto& row : rows) bench::print_row(row.label, row.result.phases);

  const auto& none = rows[0].result.phases;
  const auto& gb1 = rows[1].result.phases;
  const auto& part = rows[2].result.phases;
  std::printf("\ntime-to-result speedup: %.2fx (paper: 1.46x)\n",
              none.total_s / gb1.total_s);
  std::printf("merge phase speedup:    %.2fx (paper: 3.12x)\n",
              none.merge_s / gb1.merge_s);
  std::printf("merge rounds: pairwise %llu -> p-way %llu\n",
              (unsigned long long)rows[0].result.merge_rounds,
              (unsigned long long)rows[1].result.merge_rounds);
  std::printf("mean CPU utilization: none %.1f%%  1GB %.1f%%\n",
              rows[0].result.mean_utilization,
              rows[1].result.mean_utilization);
  std::printf("\npartitioned merge (beyond paper, docs/merge.md):\n");
  std::printf("  merge %.2fs vs p-way %.2fs (%.2fx); total %.2fs (%.2fx vs "
              "none)\n",
              part.merge_s, gb1.merge_s, gb1.merge_s / part.merge_s,
              part.total_s, none.total_s / part.total_s);
  return 0;
}
