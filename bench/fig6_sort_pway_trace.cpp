// Fig. 6: sort on SupMR (1 GB chunks + p-way merge) avoids Fig. 1's merge
// step curve: one merge round at sustained high utilization.
#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

int main() {
  bench::print_banner(
      "Fig. 6 -- sort on SupMR: p-way merge removes the step curve (60 GB)",
      "SupMR paper, Fig. 6 (vs Fig. 1); 3.13x merge speedup, one round");

  auto baseline = fig1_sort_baseline();
  auto supmr = fig6_sort_pway();

  std::printf("%s\n", PhaseBreakdown::table_header().c_str());
  bench::print_row("original", baseline.phases);
  bench::print_row("SupMR", supmr.phases);
  std::printf("\nmerge: %llu pairwise rounds -> %llu p-way round; speedup %.2fx"
              " (paper: 3.13x)\n",
              (unsigned long long)baseline.merge_rounds,
              (unsigned long long)supmr.merge_rounds,
              baseline.phases.merge_s / supmr.phases.merge_s);

  bench::print_trace("CPU utilization, SupMR sort (Fig. 6)", supmr.trace);
  bench::dump_csv("fig6_sort_supmr", supmr.trace);
  return 0;
}
