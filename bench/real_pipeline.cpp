// Real wall-clock validation of the ingest chunk pipeline (the paper's core
// mechanism) on actual threads and a throttled device: chunked run(kIngestMR)
// must beat the original read-then-compute runtime, and the win must come
// from overlapping ingest with map.
#include <cstdio>

#include "apps/word_count.hpp"
#include "bench/bench_util.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

struct RunResult {
  double total = 0, readmap = 0;
  std::uint64_t words = 0;
};

RunResult run(bool chunked, const std::string& text, double bw,
              const core::JobConfig& obs_config) {
  auto base = std::make_shared<storage::MemDevice>(text, "corpus");
  auto limiter = std::make_shared<storage::RateLimiter>(bw);
  auto dev = std::make_shared<storage::ThrottledDevice>(base, limiter);
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(dev, std::make_shared<ingest::LineFormat>(),
                                 chunked ? 1 * kMB : 0);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  jc.metrics_json_path = obs_config.metrics_json_path;
  jc.trace_out_path = obs_config.trace_out_path;
  core::MapReduceJob job(app, src, jc);
  auto r = chunked ? job.run(core::ExecMode::kIngestMR) : job.run(core::ExecMode::kOriginal);
  RunResult out;
  if (!r.ok()) {
    std::printf("run failed: %s\n", r.status().to_string().c_str());
    return out;
  }
  out.total = r->phases.total_s;
  out.readmap = r->phases.has_combined_readmap
                    ? r->phases.readmap_s
                    : r->phases.read_s + r->phases.map_s;
  out.words = app.words_mapped();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Real-mode pipeline validation (16 MB corpus @ 32 MB/s throttle)",
      "SupMR paper, Section III (double-buffered ingest chunk pipeline)");

  core::JobConfig obs_config;
  bench::apply_obs_flags(argc, argv, obs_config);

  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 16 * kMB;
  const std::string text = wload::generate_text(cfg);

  // Only the chunked run carries the observability outputs: both runs share
  // the process-global registry/recorder, so attaching the dumps to the last
  // run keeps the emitted files covering a single coherent job.
  const RunResult original = run(false, text, 32.0e6, core::JobConfig{});
  const RunResult supmr = run(true, text, 32.0e6, obs_config);

  std::printf("  %-18s total %6.2fs  read+map %6.2fs\n", "original run()",
              original.total, original.readmap);
  std::printf("  %-18s total %6.2fs  read+map %6.2fs\n",
              "SupMR run(kIngestMR)", supmr.total, supmr.readmap);
  if (original.total > 0 && supmr.total > 0) {
    std::printf("\n  time-to-result speedup: %.2fx\n",
                original.total / supmr.total);
    std::printf("  words mapped identical: %s (%llu)\n",
                original.words == supmr.words ? "yes" : "NO",
                (unsigned long long)original.words);
  }
  std::printf("\nexpected shape: the chunked run hides map compute inside\n"
              "the ~0.5s of throttled ingest, so its total approaches the\n"
              "raw transfer time while the original pays read THEN map.\n");
  return 0;
}
