// Ablation: ingest chunk size sweep (paper §III.A.2 / Conclusion 2).
//
// Sweeps chunk sizes for both applications at paper scale: total time falls
// as chunks shrink (more overlap) until per-round thread overhead pushes it
// back up — the tuning tradeoff the paper leaves to the user.
#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

namespace {

void sweep(const char* name, const AppModel& app,
           const wload::VirtualDataset& dataset) {
  std::printf("\n%s (%s):\n", name, format_bytes(dataset.total_bytes).c_str());
  std::printf("  %12s %10s %12s %10s %12s\n", "chunk", "total", "read+map",
              "util", "threads");
  const std::vector<std::uint64_t> sizes = {
      0,           50 * kGB,   10 * kGB,  4 * kGB,  1 * kGB,
      250 * kMB,   50 * kMB,   10 * kMB};
  auto points =
      chunk_size_sweep(app, dataset, core::MergeMode::kPWay, sizes);
  for (const auto& p : points) {
    std::printf("  %12s %9.2fs %11.2fs %9.1f%% %12llu\n",
                p.chunk_bytes == 0 ? "none"
                                   : format_bytes(p.chunk_bytes).c_str(),
                p.total_s, p.readmap_s, p.mean_utilization,
                (unsigned long long)p.threads_spawned);
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- ingest chunk size sweep",
      "SupMR paper, Section III.A.2 and Conclusion 2 (optimal chunk size)");
  const auto wc = wload::paper_wordcount_dataset();
  const auto srt = wload::paper_sort_dataset();
  sweep("word count", wordcount_model(wc), wc);
  sweep("sort", sort_model(srt), srt);
  std::printf(
      "\nexpected shape: totals fall as chunks shrink (more ingest/compute\n"
      "overlap), then rise again when per-round thread spawn/join overhead\n"
      "dominates; thread count explodes as chunks shrink (energy cost,\n"
      "Section VI.C.1).\n");
  return 0;
}
