// Micro-benchmarks: sorting and merging kernels.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "merge/introsort.hpp"
#include "merge/loser_tree.hpp"
#include "merge/pway.hpp"
#include "merge/sample_sort.hpp"

namespace supmr::merge {
namespace {

std::vector<std::uint64_t> random_data(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng();
  return v;
}

void BM_Introsort(benchmark::State& state) {
  const auto base = random_data(state.range(0), 1);
  for (auto _ : state) {
    auto v = base;
    introsort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Introsort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_StdSortReference(benchmark::State& state) {
  const auto base = random_data(state.range(0), 1);
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSortReference)->Arg(1 << 14)->Arg(1 << 18);

void BM_LoserTreeMerge(benchmark::State& state) {
  const std::size_t runs = state.range(0);
  const std::size_t per_run = (1 << 18) / runs;
  std::vector<std::vector<std::uint64_t>> data(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    data[r] = random_data(per_run, r + 1);
    std::sort(data[r].begin(), data[r].end());
  }
  std::vector<std::uint64_t> out(runs * per_run);
  for (auto _ : state) {
    std::vector<std::span<const std::uint64_t>> spans;
    for (auto& d : data) spans.emplace_back(d);
    LoserTree<std::uint64_t, std::less<std::uint64_t>> tree(
        spans, std::less<std::uint64_t>{});
    tree.drain(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out.size());
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_PairwiseMergeSort(benchmark::State& state) {
  const auto base = random_data(1 << 18, 3);
  ThreadPool pool(4);
  for (auto _ : state) {
    auto v = base;
    pairwise_merge_sort(pool, std::span<std::uint64_t>(v),
                        std::less<std::uint64_t>{}, state.range(0));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * base.size());
  state.SetLabel("runs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PairwiseMergeSort)->Arg(8)->Arg(32);

void BM_ParallelSampleSort(benchmark::State& state) {
  const auto base = random_data(1 << 18, 3);
  ThreadPool pool(4);
  for (auto _ : state) {
    auto v = base;
    parallel_sample_sort(pool, std::span<std::uint64_t>(v),
                         std::less<std::uint64_t>{}, state.range(0));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * base.size());
  state.SetLabel("runs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ParallelSampleSort)->Arg(8)->Arg(32);

}  // namespace
}  // namespace supmr::merge

BENCHMARK_MAIN();
