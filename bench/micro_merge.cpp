// Micro-benchmarks: sorting and merging kernels.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "merge/introsort.hpp"
#include "merge/loser_tree.hpp"
#include "merge/partitioned.hpp"
#include "merge/pway.hpp"
#include "merge/sample_sort.hpp"
#include "tests/testdata.hpp"

namespace supmr::merge {
namespace {

// Shared seeded generator (tests/testdata.hpp): the differential merge
// suite draws byte-identical inputs, so bench and test disagree only on
// timing, never on data.
std::vector<std::uint64_t> random_data(std::size_t n, std::uint64_t seed) {
  return testdata::random_u64(n, seed);
}

void BM_Introsort(benchmark::State& state) {
  const auto base = random_data(state.range(0), 1);
  for (auto _ : state) {
    auto v = base;
    introsort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Introsort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_StdSortReference(benchmark::State& state) {
  const auto base = random_data(state.range(0), 1);
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSortReference)->Arg(1 << 14)->Arg(1 << 18);

void BM_LoserTreeMerge(benchmark::State& state) {
  const std::size_t runs = state.range(0);
  const std::size_t per_run = (1 << 18) / runs;
  std::vector<std::vector<std::uint64_t>> data(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    data[r] = random_data(per_run, r + 1);
    std::sort(data[r].begin(), data[r].end());
  }
  std::vector<std::uint64_t> out(runs * per_run);
  for (auto _ : state) {
    std::vector<std::span<const std::uint64_t>> spans;
    for (auto& d : data) spans.emplace_back(d);
    LoserTree<std::uint64_t, std::less<std::uint64_t>> tree(
        spans, std::less<std::uint64_t>{});
    tree.drain(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out.size());
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_PairwiseMergeSort(benchmark::State& state) {
  const auto base = random_data(1 << 18, 3);
  ThreadPool pool(4);
  for (auto _ : state) {
    auto v = base;
    pairwise_merge_sort(pool, std::span<std::uint64_t>(v),
                        std::less<std::uint64_t>{}, state.range(0));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * base.size());
  state.SetLabel("runs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PairwiseMergeSort)->Arg(8)->Arg(32);

void BM_ParallelSampleSort(benchmark::State& state) {
  const auto base = random_data(1 << 18, 3);
  ThreadPool pool(4);
  for (auto _ : state) {
    auto v = base;
    parallel_sample_sort(pool, std::span<std::uint64_t>(v),
                         std::less<std::uint64_t>{}, state.range(0));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * base.size());
  state.SetLabel("runs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ParallelSampleSort)->Arg(8)->Arg(32);

// --------------------------------------------------------------------------
// Merge-phase comparison: single global p-way merge vs per-partition merges
// (docs/merge.md). Both benchmarks time ONLY the merge phase of a sort job
// over the same duplicate-light input (shared seed => byte-identical data):
//   * global: the intermediate container is unsorted, so the merge phase is
//     run formation + one p-way merge round over ALL runs (scratch +
//     copy-back) — parallel_sample_sort, the kPWay job path;
//   * partitioned: the key-range shuffle already happened at map time (not
//     timed — that cost rides on the map phase), so the merge phase is one
//     stripe sort + loser-tree merge per partition, written straight into
//     the output window — partitioned_merge, the kPartitioned job path.

void BM_MergePhaseGlobalPway(benchmark::State& state) {
  const std::size_t n = 1 << 21;
  const auto base = random_data(n, 42);
  ThreadPool pool(state.range(0));
  for (auto _ : state) {
    auto v = base;
    parallel_sample_sort(pool, std::span<std::uint64_t>(v),
                         std::less<std::uint64_t>{});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MergePhaseGlobalPway)->Arg(4)->Arg(8)->UseRealTime();

void BM_MergePhasePartitioned(benchmark::State& state) {
  const std::size_t n = 1 << 21;
  const auto base = random_data(n, 42);
  const std::size_t threads = state.range(0);
  ThreadPool pool(threads);
  // --partitions: auto (= contexts) at range(1) == 1; larger multiples
  // trade splitter count for smaller per-stripe sorts.
  const std::size_t P = threads * state.range(1);

  // Map-time shuffle (outside the timed region): bucket into (partition,
  // thread) stripes exactly as PartitionedContainer does during map.
  auto cmp = std::less<std::uint64_t>{};
  const auto splitters = select_splitters(
      std::span<const std::uint64_t>(base.data(), base.size()), P, cmp);
  std::vector<std::vector<std::vector<std::uint64_t>>> stripes(
      splitters.size() + 1, std::vector<std::vector<std::uint64_t>>(threads));
  for (std::size_t i = 0; i < n; ++i) {
    stripes[partition_of(splitters, base[i], cmp)][i % threads].push_back(
        base[i]);
  }

  // `work` persists across iterations so the per-iteration reset is the
  // same flat N-item copy the global variant pays (no reallocation churn).
  auto work = stripes;
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    for (std::size_t p = 0; p < stripes.size(); ++p)
      for (std::size_t t = 0; t < threads; ++t)
        work[p][t].assign(stripes[p][t].begin(), stripes[p][t].end());
    std::vector<std::vector<std::span<std::uint64_t>>> parts(
        splitters.size() + 1);
    for (std::size_t p = 0; p < parts.size(); ++p)
      for (auto& s : work[p])
        if (!s.empty()) parts[p].push_back(std::span<std::uint64_t>(s));
    partitioned_merge(pool, std::move(parts), out.data(), cmp);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("threads=" + std::to_string(threads) +
                 " partitions=" + std::to_string(splitters.size() + 1));
}
BENCHMARK(BM_MergePhasePartitioned)
    ->Args({4, 1})
    ->Args({4, 16})
    ->Args({8, 1})
    ->Args({8, 16})
    ->UseRealTime();

void BM_PartitionedSort(benchmark::State& state) {
  const auto base = random_data(1 << 18, 3);
  ThreadPool pool(4);
  for (auto _ : state) {
    auto v = base;
    partitioned_sort(pool, std::span<std::uint64_t>(v),
                     std::less<std::uint64_t>{}, state.range(0));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * base.size());
  state.SetLabel("partitions=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PartitionedSort)->Arg(4)->Arg(16);

}  // namespace
}  // namespace supmr::merge

BENCHMARK_MAIN();
