// Fig. 1: CPU utilization of the ORIGINAL scale-up MapReduce sort (60 GB):
// a long low-utilization ingest, a short compute spike, and the decaying
// "step curve" of the iterative pairwise merge.
#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

int main() {
  bench::print_banner(
      "Fig. 1 -- sort on the original runtime: ingest+merge bottlenecks",
      "SupMR paper, Fig. 1 (compute <25% of execution; merge step curve)");

  auto r = fig1_sort_baseline();
  std::printf("%s\n", PhaseBreakdown::table_header().c_str());
  bench::print_row("none", r.phases);

  const double compute = r.phases.map_s + r.phases.reduce_s;
  std::printf("\ncompute (map+reduce) fraction of total: %.1f%% (paper: <25%%)\n",
              compute / r.phases.total_s * 100.0);
  std::printf("merge rounds (halving workers, the step curve): %llu\n",
              (unsigned long long)r.merge_rounds);

  bench::print_trace("CPU utilization, original runtime sort (Fig. 1)",
                     r.trace);
  bench::dump_csv("fig1_sort_baseline", r.trace);
  return 0;
}
