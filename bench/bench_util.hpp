// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/phase_timer.hpp"
#include "core/job_config.hpp"
#include "perfmodel/sim_job.hpp"

namespace supmr::bench {

inline void print_banner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

inline void print_row(const std::string& label, const PhaseBreakdown& p) {
  std::printf("%s\n", p.to_table_row(label).c_str());
}

inline void print_trace(const char* title, const TimeSeries& trace) {
  std::printf("\n--- %s ---\n%s", title,
              trace.to_ascii_chart(100, 18).c_str());
}

// Writes the trace CSV next to the binary for external plotting.
inline void dump_csv(const std::string& name, const TimeSeries& trace) {
  const std::string path = name + ".csv";
  trace.write_csv(path);
  std::printf("trace csv written to %s\n", path.c_str());
}

// Structured bench results. The CSV dumps above feed external plotting; the
// perf *trajectory* lives in-repo as committed BENCH_<name>.json files at the
// repo root — one flat array of metric rows so a later session (or CI) can
// diff numbers across PRs without parsing bench stdout:
//   {"bench": "ingest", "metrics": [
//     {"name": "ingest_mmap", "value": 8123.4, "unit": "MB/s",
//      "note": "borrowed views, 1MB chunks"}, ...]}
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void metric(std::string name, double value, std::string unit,
              std::string note = "") {
    rows_.push_back({std::move(name), value, std::move(unit),
                     std::move(note)});
  }

  std::string to_json() const {
    JsonWriter w;
    w.begin_object();
    w.kv("bench", bench_);
    w.key("metrics");
    w.begin_array();
    for (const Row& r : rows_) {
      w.begin_object();
      w.kv("name", r.name);
      w.kv("value", r.value);
      w.kv("unit", r.unit);
      if (!r.note.empty()) w.kv("note", r.note);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

  // Writes the document (with trailing newline) to `path`; returns false on
  // I/O failure. Benches print the destination so runs are self-describing.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::string doc = to_json() + "\n";
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (ok) std::printf("bench json written to %s\n", path.c_str());
    return ok;
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
    std::string note;
  };
  std::string bench_;
  std::vector<Row> rows_;
};

// Applies the shared observability flags (--metrics-json=PATH,
// --trace-out=PATH) to a JobConfig so every bench binary exposes the same
// knobs as the CLI. Unrecognized arguments are ignored — benches keep their
// own positional conventions.
inline void apply_obs_flags(int argc, char** argv, core::JobConfig& config) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      config.metrics_json_path = arg + 15;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      config.trace_out_path = arg + 12;
    }
  }
}

}  // namespace supmr::bench
