// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/phase_timer.hpp"
#include "core/job_config.hpp"
#include "perfmodel/sim_job.hpp"

namespace supmr::bench {

inline void print_banner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

inline void print_row(const std::string& label, const PhaseBreakdown& p) {
  std::printf("%s\n", p.to_table_row(label).c_str());
}

inline void print_trace(const char* title, const TimeSeries& trace) {
  std::printf("\n--- %s ---\n%s", title,
              trace.to_ascii_chart(100, 18).c_str());
}

// Writes the trace CSV next to the binary for external plotting.
inline void dump_csv(const std::string& name, const TimeSeries& trace) {
  const std::string path = name + ".csv";
  trace.write_csv(path);
  std::printf("trace csv written to %s\n", path.c_str());
}

// Applies the shared observability flags (--metrics-json=PATH,
// --trace-out=PATH) to a JobConfig so every bench binary exposes the same
// knobs as the CLI. Unrecognized arguments are ignored — benches keep their
// own positional conventions.
inline void apply_obs_flags(int argc, char** argv, core::JobConfig& config) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      config.metrics_json_path = arg + 15;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      config.trace_out_path = arg + 12;
    }
  }
}

}  // namespace supmr::bench
