// Micro-benchmarks: threading primitives on the pipeline's hot paths.
#include <benchmark/benchmark.h>

#include <thread>

#include "threading/double_buffer.hpp"
#include "threading/latch.hpp"
#include "threading/mpmc_queue.hpp"
#include "threading/spsc_queue.hpp"
#include "threading/thread_pool.hpp"

namespace supmr {
namespace {

void BM_SpscPushPop(benchmark::State& state) {
  SpscQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.try_push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

void BM_SpscThroughputThreaded(benchmark::State& state) {
  for (auto _ : state) {
    SpscQueue<std::uint64_t> q(256);
    constexpr int kItems = 100000;
    std::thread producer([&] {
      for (int i = 0; i < kItems; ++i)
        while (!q.try_push(i)) std::this_thread::yield();
    });
    std::uint64_t sum = 0;
    int got = 0;
    while (got < kItems) {
      if (auto x = q.try_pop()) {
        sum += *x;
        ++got;
      }
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SpscThroughputThreaded)->Unit(benchmark::kMillisecond);

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<std::uint64_t> q;
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcPushPop);

void BM_PoolWave(benchmark::State& state) {
  // Cost of dispatching one mapper wave on pooled workers.
  ThreadPool pool(4);
  std::vector<std::function<void(std::size_t)>> tasks;
  for (int i = 0; i < 4; ++i)
    tasks.push_back([](std::size_t) { benchmark::ClobberMemory(); });
  for (auto _ : state) pool.run_wave_or_throw(tasks);
  state.SetItemsProcessed(state.iterations() * tasks.size());
}
BENCHMARK(BM_PoolWave)->Unit(benchmark::kMicrosecond);

void BM_UnpooledWave(benchmark::State& state) {
  // The paper's per-round thread create/destroy — compare with BM_PoolWave.
  std::vector<std::function<void(std::size_t)>> tasks;
  for (int i = 0; i < 4; ++i)
    tasks.push_back([](std::size_t) { benchmark::ClobberMemory(); });
  for (auto _ : state) ThreadPool::run_wave_unpooled(tasks);
  state.SetItemsProcessed(state.iterations() * tasks.size());
}
BENCHMARK(BM_UnpooledWave)->Unit(benchmark::kMicrosecond);

void BM_DoubleBufferHandoff(benchmark::State& state) {
  for (auto _ : state) {
    DoubleBuffer<std::uint64_t> buf;
    constexpr int kItems = 20000;
    std::thread producer([&] {
      for (int i = 0; i < kItems; ++i) buf.produce(i);
      buf.close();
    });
    std::uint64_t v, sum = 0;
    while (buf.consume(v)) sum += v;
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_DoubleBufferHandoff)->Unit(benchmark::kMillisecond);

void BM_LatchRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    CountdownLatch latch(1);
    latch.count_down();
    latch.wait();
  }
}
BENCHMARK(BM_LatchRoundTrip);

}  // namespace
}  // namespace supmr

BENCHMARK_MAIN();
