// Ablation: hardware-context scaling at paper scale.
//
// How do the original runtime and SupMR scale with core count? Since the
// ingest bottleneck is a fixed-bandwidth channel, adding contexts quickly
// stops helping the baseline (Amdahl on the sequential ingest), while SupMR
// hides the compute entirely — the paper's motivation that "the theoretical
// speedup of the program is limited" by the sequential phases.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

namespace {

void sweep(const char* name, const wload::VirtualDataset& dataset,
           const AppModel& app, core::MergeMode mode) {
  std::printf("\n%s:\n  %9s %14s %14s %10s\n", name, "contexts",
              "original", "SupMR(1GB)", "speedup");
  for (int contexts : {4, 8, 16, 32, 64, 128}) {
    SimJobSpec spec;
    spec.machine = paper_machine();
    spec.machine.contexts = contexts;
    spec.num_mappers = static_cast<std::size_t>(contexts);
    spec.dataset = dataset;
    spec.app = app;

    spec.chunk_bytes = 0;
    spec.merge_mode = core::MergeMode::kPairwise;
    const double original = simulate_job(spec).phases.total_s;

    spec.chunk_bytes = 1 * kGB;
    spec.merge_mode = mode;
    const double supmr = simulate_job(spec).phases.total_s;

    std::printf("  %9d %13.2fs %13.2fs %9.2fx\n", contexts, original, supmr,
                original / supmr);
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- hardware context scaling (paper-scale model)",
      "SupMR paper, Section I (sequential phases limit theoretical speedup)");
  sweep("word count (155 GB)", wload::paper_wordcount_dataset(),
        wordcount_model(wload::paper_wordcount_dataset()),
        core::MergeMode::kPWay);
  sweep("sort (60 GB)", wload::paper_sort_dataset(),
        sort_model(wload::paper_sort_dataset()), core::MergeMode::kPWay);
  std::printf(
      "\nexpected shape: original-runtime totals flatten once compute no\n"
      "longer dominates (the fixed 384 MB/s ingest is Amdahl's serial\n"
      "fraction); SupMR's advantage persists because ingest is overlapped\n"
      "and the merge runs a single full-width round.\n");
  return 0;
}
