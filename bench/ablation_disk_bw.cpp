// Ablation: ingest-device bandwidth sweep at paper scale.
//
// The paper's intro argues systems "using disks instead of SSDs may not be
// able to serve data fast enough" [2]. This sweep quantifies where the
// ingest chunk pipeline stops mattering: as device bandwidth grows from one
// HDD to NVMe-class, the ingest phase shrinks relative to map, the
// pipeline's overlap window closes, and the word-count speedup decays
// toward 1x (while sort keeps its merge win regardless of the device).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "perfmodel/experiments.hpp"

using namespace supmr;
using namespace supmr::perfmodel;

namespace {

void sweep(const char* name, const wload::VirtualDataset& dataset,
           const AppModel& app) {
  std::printf("\n%s:\n  %12s %12s %12s %10s\n", name, "device",
              "original", "SupMR(1GB)", "speedup");
  struct Dev {
    const char* label;
    double bw;
  };
  const Dev devices[] = {
      {"1 HDD", 128e6},       {"RAID-0 (paper)", 384e6},
      {"SATA SSD", 550e6},    {"NVMe", 3.0e9},
      {"NVMe RAID", 12.0e9},
  };
  for (const auto& dev : devices) {
    SimJobSpec spec;
    spec.machine = paper_machine();
    spec.machine.disk_bw_bps = dev.bw;
    spec.dataset = dataset;
    spec.app = app;

    spec.chunk_bytes = 0;
    spec.merge_mode = core::MergeMode::kPairwise;
    const double original = simulate_job(spec).phases.total_s;

    spec.chunk_bytes = 1 * kGB;
    spec.merge_mode = core::MergeMode::kPWay;
    const double supmr = simulate_job(spec).phases.total_s;

    std::printf("  %12s %11.2fs %11.2fs %9.2fx\n", dev.label, original,
                supmr, original / supmr);
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- ingest device bandwidth sweep (paper-scale model)",
      "SupMR paper, Section I (disk vs SSD ingest bottleneck)");
  sweep("word count (155 GB)", wload::paper_wordcount_dataset(),
        wordcount_model(wload::paper_wordcount_dataset()));
  sweep("sort (60 GB)", wload::paper_sort_dataset(),
        sort_model(wload::paper_sort_dataset()));
  std::printf(
      "\nexpected shape: the pipeline hides min(ingest, map) under\n"
      "max(ingest, map), so word count's speedup PEAKS at the device speed\n"
      "where ingest and map are balanced (~NVMe for these constants) and\n"
      "decays on both sides — Conclusion 4 generalized. Sort's gain is\n"
      "dominated by the p-way merge and survives any device.\n");
  return 0;
}
