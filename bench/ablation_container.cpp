// Ablation: intermediate container choice for sort (paper §V.B).
//
// "The hash container is a poor data structure for applications like sort,
// where the large input set is transformed to an equal sized intermediate
// set": every unique key pays a probe-before-insert in map and a sweep of
// near-empty buckets in reduce. The unlocked array container skips both.
// This is a REAL wall-clock experiment at reduced scale.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "apps/tera_sort.hpp"
#include "bench/bench_util.hpp"
#include "containers/combiners.hpp"
#include "containers/hash_container.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "merge/introsort.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"

using namespace supmr;

namespace {

// Sort built the WRONG way: unique keys pushed through the hash container.
class HashSortApp final : public core::Application {
 public:
  void init(std::size_t mappers) override {
    mappers_ = mappers;
    container_.init(mappers, 1 << 16);
  }
  Status prepare_round(const ingest::IngestChunk& chunk) override {
    chunk_ = &chunk;
    const std::uint64_t records = chunk.data.size() / 100;
    per_ = (records + mappers_ - 1) / mappers_;
    tasks_ = per_ ? (records + per_ - 1) / per_ : 0;
    records_ = records;
    return Status::Ok();
  }
  std::size_t round_tasks() const override { return tasks_; }
  void map_task(std::size_t task, std::size_t thread_id) override {
    const std::uint64_t first = task * per_;
    const std::uint64_t last = std::min(first + per_, records_);
    for (std::uint64_t r = first; r < last; ++r) {
      const char* rec = chunk_->data.data() + r * 100;
      // Key: 10 bytes; value: the 100-byte record body (copied).
      container_.emit(thread_id, std::string_view(rec, 10),
                      std::string(rec, 100));
    }
  }
  Status reduce(ThreadPool& pool, std::size_t parts) override {
    partitions_.assign(parts, {});
    std::vector<std::function<void(std::size_t)>> tasks;
    for (std::size_t p = 0; p < parts; ++p) {
      tasks.push_back([this, p, parts](std::size_t) {
        partitions_[p] = container_.reduce_partition(p, parts);
      });
    }
    if (!pool.run_wave(tasks))
      return Status::Internal("reduce wave dropped: thread pool shut down");
    return Status::Ok();
  }
  Status merge(ThreadPool&, const core::MergePlan&,
               merge::MergeStats* stats) override {
    std::vector<std::pair<std::string, std::vector<std::string>>> all;
    for (auto& p : partitions_)
      for (auto& kv : p) all.push_back(std::move(kv));
    merge::introsort(all.begin(), all.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    count_ = all.size();
    if (stats) *stats = merge::MergeStats{};
    return Status::Ok();
  }
  std::uint64_t result_count() const override { return count_; }

 private:
  std::size_t mappers_ = 0, tasks_ = 0;
  std::uint64_t per_ = 0, records_ = 0, count_ = 0;
  const ingest::IngestChunk* chunk_ = nullptr;
  containers::HashContainer<containers::AppendCombiner<std::string>>
      container_;
  std::vector<std::vector<std::pair<std::string, std::vector<std::string>>>>
      partitions_;
};

double run_once(core::Application& app, const storage::Device& dev,
                PhaseBreakdown* phases) {
  auto shared = std::shared_ptr<const storage::Device>(
      &dev, [](const storage::Device*) {});
  ingest::SingleDeviceSource src(shared,
                                 std::make_shared<ingest::CrlfFormat>(), 0);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 4;
  core::MapReduceJob job(app, src, jc);
  auto r = job.run(core::ExecMode::kOriginal);
  if (!r.ok()) {
    std::printf("run failed: %s\n", r.status().to_string().c_str());
    return -1;
  }
  if (phases) *phases = r->phases;
  return r->phases.total_s;
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation -- container choice for sort (real wall-clock, 20 MB)",
      "SupMR paper, Section V.B (unlocked array vs hash container)");

  wload::TeraGenConfig cfg;
  cfg.num_records = 200000;  // 20 MB
  storage::MemDevice dev(wload::teragen_to_string(cfg));

  apps::TeraSortApp array_app;
  PhaseBreakdown array_phases;
  const double array_total = run_once(array_app, dev, &array_phases);

  HashSortApp hash_app;
  PhaseBreakdown hash_phases;
  const double hash_total = run_once(hash_app, dev, &hash_phases);

  std::printf("  %-24s map %7.3fs  reduce %7.3fs  merge %7.3fs  total %7.3fs\n",
              "array (unlocked)", array_phases.map_s, array_phases.reduce_s,
              array_phases.merge_s, array_total);
  std::printf("  %-24s map %7.3fs  reduce %7.3fs  merge %7.3fs  total %7.3fs\n",
              "hash (probe-per-key)", hash_phases.map_s, hash_phases.reduce_s,
              hash_phases.merge_s, hash_total);
  if (array_total > 0 && hash_total > 0) {
    std::printf("\nunlocked array speedup over hash container: %.2fx\n",
                hash_total / array_total);
  }
  std::printf("expected shape: hash pays probe-before-insert on every unique\n"
              "key and per-key allocation; array writes records in place.\n");
  return 0;
}
